/**
 * @file
 * Network packet base class and flit representation.
 *
 * Higher layers (coherence, MSA) subclass Packet; the NoC only looks
 * at source, destination and size. Packets are segmented into flits
 * at injection and reassembled at ejection.
 */

#ifndef MISAR_NOC_PACKET_HH
#define MISAR_NOC_PACKET_HH

#include <cstdint>
#include <memory>

#include "sim/types.hh"

namespace misar {
namespace noc {

/** Base class for everything that travels over the NoC. */
class Packet
{
  public:
    Packet(CoreId src, CoreId dst, unsigned size_bytes)
        : _src(src), _dst(dst), _sizeBytes(size_bytes)
    {}

    virtual ~Packet();

    CoreId src() const { return _src; }
    CoreId dst() const { return _dst; }
    unsigned sizeBytes() const { return _sizeBytes; }

    /** Tick at which the packet entered the injection queue. */
    Tick injectTick = 0;

    /**
     * Virtual network: 0 for requests, 1 for replies/data. Keeping
     * the two classes on separate virtual channels removes
     * request-reply protocol deadlock.
     */
    unsigned vnet = 0;

  private:
    CoreId _src;
    CoreId _dst;
    unsigned _sizeBytes;
};

/** Size of a control (header-only) message in bytes. */
constexpr unsigned ctrlBytes = 8;

/** Size of a data message (header + one cache block) in bytes. */
constexpr unsigned dataBytes = 8 + blockBytes;

/**
 * One flow-control unit. The head flit carries ownership of the
 * packet; body/tail flits only carry routing state.
 */
struct Flit
{
    std::shared_ptr<Packet> pkt; ///< set on every flit for dst lookup
    bool head = false;
    bool tail = false;
    std::uint64_t packetSeq = 0; ///< global packet sequence number
};

/** Number of flits a packet of @p size_bytes occupies. */
unsigned flitCount(unsigned size_bytes, unsigned flit_bytes);

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_PACKET_HH
