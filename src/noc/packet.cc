#include "noc/packet.hh"

namespace misar {
namespace noc {

Packet::~Packet() = default;

unsigned
flitCount(unsigned size_bytes, unsigned flit_bytes)
{
    unsigned n = (size_bytes + flit_bytes - 1) / flit_bytes;
    return n ? n : 1;
}

} // namespace noc
} // namespace misar
