/**
 * @file
 * Process exit codes shared between misar_sim and the campaign
 * engine. The simulator encodes its run outcome in the exit status
 * so an orchestrator can classify jobs without parsing output:
 *
 *   0   finished             every thread completed
 *   1   fatal()              user/configuration error (never retried)
 *   40  deadlock             event queue drained with blocked threads
 *   41  tick-limit           tick budget exhausted (livelock/runaway)
 *   SIGABRT                  panic() — an internal invariant tripped
 *
 * Anything else (signals, exec failure) is classified as a crash by
 * the engine and is eligible for retry.
 */

#ifndef MISAR_ORCH_EXIT_CODES_HH
#define MISAR_ORCH_EXIT_CODES_HH

namespace misar {
namespace orch {

constexpr int exitFinished = 0;
/** fatal(): bad flags/config; deterministic, the engine never retries. */
constexpr int exitFatal = 1;
constexpr int exitDeadlock = 40;
constexpr int exitTickLimit = 41;

/** misar_campaign: campaign ran but some jobs failed permanently. */
constexpr int exitCampaignJobsFailed = 2;
/** misar_campaign: stopped before every job completed (resumable). */
constexpr int exitCampaignIncomplete = 75;

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_EXIT_CODES_HH
