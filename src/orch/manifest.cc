#include "orch/manifest.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "orch/json.hh"
#include "sim/logging.hh"
#include "sim/trace.hh" // jsonEscape

namespace misar {
namespace orch {

namespace {

std::string
hashHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

bool
Manifest::open(const std::string &path, const std::string &campaign,
               std::size_t jobs, std::uint64_t gridHash, bool fresh)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND | (fresh ? O_TRUNC : 0);
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        warn("cannot open manifest %s: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    if (fresh) {
        std::ostringstream os;
        os << "{\"manifest\":" << version << ",\"campaign\":\""
           << jsonEscape(campaign) << "\",\"jobs\":" << jobs
           << ",\"gridHash\":\"" << hashHex(gridHash) << "\"}\n";
        const std::string line = os.str();
        if (::write(fd, line.data(), line.size()) !=
            static_cast<ssize_t>(line.size()))
            return false;
        ::fsync(fd);
    }
    return true;
}

bool
Manifest::append(const ManifestEntry &e)
{
    if (fd < 0)
        return false;
    std::ostringstream os;
    os << "{\"job\":" << e.job << ",\"key\":\"" << jsonEscape(e.key)
       << "\",\"outcome\":\"" << jsonEscape(e.outcome)
       << "\",\"exit\":" << e.exitCode << ",\"signal\":" << e.termSignal
       << ",\"attempts\":" << e.attempts << ",\"wallSec\":";
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", e.wallSec);
    os << wall << ",\"report\":\"" << jsonEscape(e.report) << "\"}\n";
    const std::string line = os.str();
    if (::write(fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size()))
        return false;
    return ::fsync(fd) == 0;
}

void
Manifest::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
Manifest::load(const std::string &path, const std::string &campaign,
               std::uint64_t gridHash, std::vector<ManifestEntry> &out,
               std::string &err)
{
    std::ifstream f(path);
    if (!f) {
        err = "no manifest at " + path;
        return false;
    }
    std::string line;
    bool sawHeader = false;
    std::size_t lineNo = 0;
    while (std::getline(f, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::string perr;
        Json j = parseJson(line, &perr);
        if (!j.isObj()) {
            // A torn trailing line is expected after a hard kill;
            // anything unparseable mid-file is suspicious but the
            // safe interpretation is the same: the entry never
            // completed, so the job reruns.
            warn("manifest %s line %zu unreadable (%s); ignoring",
                 path.c_str(), lineNo, perr.c_str());
            continue;
        }
        if (j.has("manifest")) {
            if (j.at("manifest").uintOr(0) != version) {
                err = "manifest version mismatch";
                return false;
            }
            if (j.at("campaign").stringOr("") != campaign) {
                err = "manifest belongs to campaign '" +
                      j.at("campaign").stringOr("") + "', not '" +
                      campaign + "'";
                return false;
            }
            if (j.at("gridHash").stringOr("") != hashHex(gridHash)) {
                err = "manifest grid hash mismatch (spec changed "
                      "since the journal was written)";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (!sawHeader) {
            err = "manifest has no header line";
            return false;
        }
        ManifestEntry e;
        e.job = static_cast<unsigned>(j.at("job").uintOr(0));
        e.key = j.at("key").stringOr("");
        e.outcome = j.at("outcome").stringOr("");
        e.exitCode = static_cast<int>(j.at("exit").numberOr(-1));
        e.termSignal = static_cast<int>(j.at("signal").numberOr(0));
        e.attempts = static_cast<unsigned>(j.at("attempts").uintOr(1));
        e.wallSec = j.at("wallSec").numberOr(0.0);
        e.report = j.at("report").stringOr("");
        out.push_back(std::move(e));
    }
    if (!sawHeader) {
        err = "manifest " + path + " is empty";
        return false;
    }
    return true;
}

} // namespace orch
} // namespace misar
