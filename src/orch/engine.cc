#include "orch/engine.hh"

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "orch/exit_codes.hh"
#include "orch/json.hh"
#include "orch/manifest.hh"
#include "orch/process_pool.hh"
#include "sim/logging.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

namespace misar {
namespace orch {

namespace {

double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    warn("cannot create directory %s: %s", path.c_str(),
         std::strerror(errno));
    return false;
}

/** Last lines of a (log) file, capped; failure context for reports. */
std::string
readTail(const std::string &path, std::size_t maxLines = 12,
         std::size_t maxBytes = 2000)
{
    std::ifstream f(path);
    if (!f)
        return "";
    std::deque<std::string> tail;
    std::string line;
    while (std::getline(f, line)) {
        tail.push_back(line);
        if (tail.size() > maxLines)
            tail.pop_front();
    }
    std::string out;
    for (const std::string &l : tail) {
        out += l;
        out += '\n';
    }
    if (out.size() > maxBytes)
        out.erase(0, out.size() - maxBytes);
    return out;
}

std::string
jobLogRelPath(unsigned jobId)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "jobs/job_%06u.log", jobId);
    return buf;
}

std::vector<std::string>
jobArgv(const CampaignSpec &spec, const JobSpec &j,
        const EngineOptions &opts, const std::string &reportPath)
{
    std::vector<std::string> argv = {
        opts.simPath,
        "--app", j.app,
        "--config", j.preset.config,
        "--cores", std::to_string(j.cores),
        "--entries", std::to_string(j.preset.entries),
        "--seed", std::to_string(j.seed),
        "--tick-limit", std::to_string(spec.tickLimit),
        "--stats-json", reportPath,
    };
    if (j.preset.smt != 1) {
        argv.push_back("--smt");
        argv.push_back(std::to_string(j.preset.smt));
    }
    if (!j.preset.hwsync)
        argv.push_back("--no-hwsync");
    if (!j.preset.omu)
        argv.push_back("--no-omu");
    return argv;
}

JobOutcome
classify(const PoolOutcome &o)
{
    if (o.timedOut)
        return JobOutcome::Timeout;
    if (!o.spawned || (o.exited && o.exitCode == 127))
        return JobOutcome::SpawnError;
    if (!o.exited)
        return JobOutcome::Crash;
    switch (o.exitCode) {
      case exitFinished:
        return JobOutcome::Finished;
      case exitDeadlock:
        return JobOutcome::Deadlock;
      case exitTickLimit:
        return JobOutcome::TickLimit;
      case exitFatal:
        return JobOutcome::Error;
      default:
        return JobOutcome::Crash;
    }
}

std::uint64_t
counterOf(const Json &counters, const std::string &name)
{
    return counters.at(name).uintOr(0);
}

/**
 * Fill a record from the job's JSON run report. The manifest's
 * outcome stays authoritative (the report of a crashed job says
 * "panic", of a timed-out job whatever its last flush said); the
 * report supplies the simulation-side numbers.
 */
void
ingestReport(JobRecord &r, const CampaignSpec &spec,
             const std::string &reportPath)
{
    std::string err;
    Json doc = parseJsonFile(reportPath, &err);
    if (!doc.isObj()) {
        if (r.outcome == JobOutcome::Finished)
            warn("job %u: unreadable run report %s (%s)", r.job.id,
                 reportPath.c_str(), err.c_str());
        return;
    }
    const Json &meta = doc.at("meta");
    r.makespan = meta.at("makespan").uintOr(0);
    r.hwCoverage = meta.at("hwCoverage").numberOr(0.0);
    const Json &counters = doc.at("stats").at("counters");
    r.hwOps = counterOf(counters, "sync.hwOps");
    r.swOps = counterOf(counters, "sync.swOps");
    r.silentLocks = counterOf(counters, "sync.silentLocks");
    for (const std::string &s : spec.stats)
        r.counters[s] = counterOf(counters, s);
    const Json &resil = doc.at("resilience");
    r.timeouts = resil.at("timeouts").uintOr(0);
    r.retries = resil.at("retries").uintOr(0);
    r.abortedOps = resil.at("abortedOps").uintOr(0);
    r.offlineSheds = resil.at("offlineSheds").uintOr(0);
    r.crossedSnoops = resil.at("crossedSnoops").uintOr(0);
}

} // namespace

std::string
jobReportRelPath(unsigned jobId)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "jobs/job_%06u.json", jobId);
    return buf;
}

bool
runCampaign(const CampaignSpec &spec, const EngineOptions &opts,
            std::vector<JobRecord> &out, CampaignRunStats &stats,
            std::string &err)
{
    const std::vector<JobSpec> jobs = spec.expand();
    const std::uint64_t hash = spec.gridHash();

    if (!ensureDir(opts.outDir) || !ensureDir(opts.outDir + "/jobs")) {
        err = "cannot create campaign directory " + opts.outDir;
        return false;
    }
    const std::string manifestPath = opts.outDir + "/manifest.jsonl";

    // Journaled terminal states from a previous (interrupted) run.
    std::map<unsigned, ManifestEntry> done;
    bool fresh = true;
    if (opts.resume) {
        struct stat st;
        if (::stat(manifestPath.c_str(), &st) == 0) {
            std::vector<ManifestEntry> entries;
            if (!Manifest::load(manifestPath, spec.name, hash, entries,
                                err))
                return false;
            for (ManifestEntry &e : entries) {
                if (e.job >= jobs.size() ||
                    jobs[e.job].key() != e.key) {
                    err = "manifest entry for job " +
                          std::to_string(e.job) +
                          " does not match the spec's grid";
                    return false;
                }
                done[e.job] = std::move(e);
            }
            fresh = false;
        }
    }

    Manifest manifest;
    if (!manifest.open(manifestPath, spec.name, jobs.size(), hash,
                       fresh)) {
        err = "cannot open manifest " + manifestPath;
        return false;
    }

    unsigned workers = opts.workers
                           ? opts.workers
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    ProcessPool pool(workers);

    stats = CampaignRunStats{};
    stats.workers = workers;
    stats.jobsTotal = static_cast<unsigned>(jobs.size());
    stats.jobsSkipped = static_cast<unsigned>(done.size());

    std::map<unsigned, unsigned> attempts;  // job id -> spawns
    std::map<unsigned, double> jobWallSec;  // summed over attempts
    bool stopped = false;
    unsigned completedNow = 0;

    auto makeTask = [&](const JobSpec &j) {
        PoolTask t;
        t.id = j.id;
        t.argv = jobArgv(spec, j, opts,
                         opts.outDir + "/" + jobReportRelPath(j.id));
        t.logPath = opts.outDir + "/" + jobLogRelPath(j.id);
        t.timeoutSec = spec.timeoutSec;
        return t;
    };

    const double t0 = nowSec();
    for (const JobSpec &j : jobs) {
        if (done.count(j.id))
            continue;
        // A fresh attempt must not inherit artifacts of a previous
        // (crashed or stale) attempt.
        ::unlink((opts.outDir + "/" + jobReportRelPath(j.id)).c_str());
        ::unlink((opts.outDir + "/" + jobLogRelPath(j.id)).c_str());
        pool.push(makeTask(j));
    }

    auto onSpawn = [&](const PoolTask &t, pid_t pid) {
        ++attempts[t.id];
        ++stats.attempts;
        if (static_cast<int>(t.id) == opts.chaosKillJob &&
            attempts[t.id] == 1) {
            warn("chaos: killing job %u's first attempt (pid %d)", t.id,
                 static_cast<int>(pid));
            ::kill(pid, SIGKILL);
        }
    };

    auto onDone = [&](const PoolTask &t, const PoolOutcome &o) {
        const JobSpec &j = jobs[t.id];
        JobOutcome oc = classify(o);
        jobWallSec[t.id] += o.wallSec;

        if (jobOutcomeRetryable(oc) && attempts[t.id] <= spec.maxRetries &&
            !stopped) {
            if (opts.verbose)
                inform("job %u (%s) %s; retrying (%u/%u)", t.id,
                       j.key().c_str(), jobOutcomeName(oc),
                       attempts[t.id], spec.maxRetries);
            ::unlink(
                (opts.outDir + "/" + jobReportRelPath(t.id)).c_str());
            pool.push(makeTask(j));
            return;
        }

        ManifestEntry e;
        e.job = t.id;
        e.key = j.key();
        e.outcome = jobOutcomeName(oc);
        e.exitCode = o.exited ? o.exitCode : -1;
        e.termSignal = o.exited ? 0 : o.termSignal;
        e.attempts = attempts[t.id];
        e.wallSec = jobWallSec[t.id];
        e.report = jobReportRelPath(t.id);
        manifest.append(e);
        done[t.id] = e;
        ++completedNow;
        ++stats.jobsRun;
        if (opts.verbose)
            inform("job %u/%zu %s -> %s (%.2fs)", t.id, jobs.size(),
                   j.key().c_str(), jobOutcomeName(oc), o.wallSec);

        if (opts.stopAfter >= 0 &&
            completedNow >= static_cast<unsigned>(opts.stopAfter) &&
            !stopped) {
            warn("stop-after %d reached; not dispatching further jobs",
                 opts.stopAfter);
            stopped = true;
            pool.cancelQueued();
        }
    };

    pool.run(onDone, onSpawn);
    manifest.close();

    stats.wallSec = nowSec() - t0;
    stats.busySec = pool.busySec();
    stats.complete = done.size() == jobs.size();

    // Aggregation input: every journaled job re-read from its report
    // in id order, so report bytes depend only on the grid and the
    // simulations — not on scheduling, retries, or resume boundaries.
    out.clear();
    out.reserve(jobs.size());
    for (const JobSpec &j : jobs) {
        JobRecord r;
        r.job = j;
        auto it = done.find(j.id);
        if (it != done.end()) {
            r.outcome = jobOutcomeFromName(it->second.outcome);
            ingestReport(r, spec, opts.outDir + "/" + it->second.report);
            if (r.outcome != JobOutcome::Finished)
                r.note =
                    readTail(opts.outDir + "/" + jobLogRelPath(j.id));
        }
        out.push_back(std::move(r));
    }
    return true;
}

std::vector<JobRecord>
runCampaignInProcess(const CampaignSpec &spec, const InProcessHooks &hooks)
{
    std::vector<JobRecord> out;
    for (const JobSpec &j : spec.expand()) {
        SystemConfig cfg;
        sync::SyncLib::Flavor flavor;
        if (!sys::cliPresetFor(j.preset.config, j.cores, j.preset.entries,
                               cfg, flavor))
            fatal("unknown preset config '%s' (validate the spec "
                  "before running it)",
                  j.preset.config.c_str());
        cfg.smtWays = j.preset.smt;
        cfg.msa.hwSyncBitOpt = j.preset.hwsync;
        cfg.msa.omuEnabled = j.preset.omu;
        cfg.seed = j.seed;
        if (hooks.tweak)
            hooks.tweak(j, cfg);
        cfg.validate();

        workload::RunOptions ro;
        ro.tickLimit = spec.tickLimit;
        ro.captureCounters = &spec.stats;
        workload::RunResult rr = workload::runAppWithConfig(
            workload::appByName(j.app), cfg, flavor, j.seed,
            j.preset.name, ro);

        JobRecord r;
        r.job = j;
        switch (rr.outcome) {
          case sys::RunOutcome::Finished:
            r.outcome = JobOutcome::Finished;
            break;
          case sys::RunOutcome::Deadlock:
            r.outcome = JobOutcome::Deadlock;
            break;
          case sys::RunOutcome::LimitReached:
            r.outcome = JobOutcome::TickLimit;
            break;
        }
        r.makespan = rr.makespan;
        r.hwCoverage = rr.hwCoverage;
        r.hwOps = rr.hwOps;
        r.swOps = rr.swOps;
        r.silentLocks = rr.silentLocks;
        r.timeouts = rr.timeouts;
        r.retries = rr.retries;
        r.abortedOps = rr.abortedOps;
        r.offlineSheds = rr.offlineSheds;
        r.crossedSnoops = rr.crossedSnoops;
        r.counters = rr.captured;
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace orch
} // namespace misar
