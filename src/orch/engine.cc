#include "orch/engine.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "orch/exit_codes.hh"
#include "orch/json.hh"
#include "orch/manifest.hh"
#include "orch/process_pool.hh"
#include "sim/logging.hh"
#include "srv/arrival.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

namespace misar {
namespace orch {

namespace {

double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    warn("cannot create directory %s: %s", path.c_str(),
         std::strerror(errno));
    return false;
}

/** Last lines of a (log) file, capped; failure context for reports. */
std::string
readTail(const std::string &path, std::size_t maxLines = 12,
         std::size_t maxBytes = 2000)
{
    std::ifstream f(path);
    if (!f)
        return "";
    std::deque<std::string> tail;
    std::string line;
    while (std::getline(f, line)) {
        tail.push_back(line);
        if (tail.size() > maxLines)
            tail.pop_front();
    }
    std::string out;
    for (const std::string &l : tail) {
        out += l;
        out += '\n';
    }
    if (out.size() > maxBytes)
        out.erase(0, out.size() - maxBytes);
    return out;
}

std::string
jobLogRelPath(unsigned jobId)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "jobs/job_%06u.log", jobId);
    return buf;
}

std::string
jobHeatmapRelPath(unsigned jobId)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "jobs/job_%06u.heatmap.json", jobId);
    return buf;
}

/**
 * Live campaign progress: <outDir>/status.json, rewritten atomically
 * (tmp + fsync + rename) on every spawn and completion so a poller
 * never reads a torn document. Status carries wall-clock data — an
 * EWMA job-completion rate and an ETA — which is exactly why it is a
 * separate file: the final report.* files are byte-compared across
 * worker counts and resume boundaries and must stay time-free.
 */
class StatusWriter
{
  public:
    StatusWriter(std::string path, std::string campaign,
                 unsigned jobs_total, unsigned jobs_skipped)
        : path(std::move(path)), campaign(std::move(campaign)),
          total(jobs_total), skipped(jobs_skipped), t0(nowSec())
    {
    }

    /** A job reached a terminal state: fold into the EWMA rate. */
    void
    onJobDone()
    {
        const double now = nowSec();
        const double dt =
            std::max(now - (doneSeen ? lastDone : t0), 1e-9);
        ewmaInterval =
            doneSeen ? 0.3 * dt + 0.7 * ewmaInterval : dt;
        ++doneSeen;
        lastDone = now;
    }

    double
    jobsPerSec() const
    {
        return ewmaInterval > 0.0 ? 1.0 / ewmaInterval : 0.0;
    }

    double
    etaSec(unsigned done) const
    {
        const unsigned remaining = total > done ? total - done : 0;
        return jobsPerSec() > 0.0 ? remaining * ewmaInterval : 0.0;
    }

    void
    write(unsigned done, unsigned running, unsigned failed,
          unsigned retries, unsigned attempts, bool complete)
    {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("schemaVersion", 1);
        w.kv("campaign", campaign);
        w.kv("jobsTotal", total);
        w.kv("jobsDone", done);
        w.kv("jobsRunning", running);
        w.kv("jobsFailed", failed);
        w.kv("jobsSkipped", skipped);
        w.kv("retries", retries);
        w.kv("attempts", attempts);
        w.kv("elapsedSec", nowSec() - t0, 3);
        w.kv("jobsPerSec", jobsPerSec(), 4);
        w.kv("etaSec", etaSec(done), 1);
        w.kv("complete", complete);
        w.endObject();
        os << "\n";
        writeAtomic(os.str());
    }

  private:
    void
    writeAtomic(const std::string &body)
    {
        const std::string tmp = path + ".tmp";
        int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0)
            return; // status is best-effort; never fail the campaign
        std::size_t off = 0;
        while (off < body.size()) {
            ssize_t n = ::write(fd, body.data() + off, body.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ::close(fd);
                ::unlink(tmp.c_str());
                return;
            }
            off += static_cast<std::size_t>(n);
        }
        ::fsync(fd);
        ::close(fd);
        ::rename(tmp.c_str(), path.c_str());
    }

    std::string path;
    std::string campaign;
    unsigned total;
    unsigned skipped;
    double t0;
    double lastDone = 0.0;
    double ewmaInterval = 0.0;
    unsigned doneSeen = 0;
};

std::vector<std::string>
jobArgv(const CampaignSpec &spec, const JobSpec &j,
        const EngineOptions &opts, const std::string &reportPath)
{
    std::vector<std::string> argv = {
        opts.simPath,
        "--app", j.app,
        "--config", j.preset.config,
        "--cores", std::to_string(j.cores),
        "--entries", std::to_string(j.preset.entries),
        "--seed", std::to_string(j.seed),
        "--tick-limit", std::to_string(spec.tickLimit),
        "--stats-json", reportPath,
    };
    if (j.preset.smt != 1) {
        argv.push_back("--smt");
        argv.push_back(std::to_string(j.preset.smt));
    }
    if (j.preset.threads != 1) {
        argv.push_back("--threads");
        argv.push_back(std::to_string(j.preset.threads));
    }
    if (!j.preset.hwsync)
        argv.push_back("--no-hwsync");
    if (!j.preset.omu)
        argv.push_back("--no-omu");
    if (spec.obs.sampleInterval) {
        argv.push_back("--sample-interval");
        argv.push_back(std::to_string(spec.obs.sampleInterval));
    }
    if (spec.obs.heatmap) {
        argv.push_back("--heatmap-out");
        argv.push_back(opts.outDir + "/" + jobHeatmapRelPath(j.id));
    }
    if (j.arrivalRate > 0) {
        argv.push_back("--arrival-rate");
        argv.push_back(formatRate(j.arrivalRate));
    }
    if (!spec.server.serviceDist.empty()) {
        argv.push_back("--service-dist");
        argv.push_back(spec.server.serviceDist);
    }
    if (spec.server.queueCap) {
        argv.push_back("--queue-cap");
        argv.push_back(std::to_string(spec.server.queueCap));
    }
    if (spec.server.slo) {
        argv.push_back("--slo");
        argv.push_back(std::to_string(spec.server.slo));
    }
    if (!j.retryPolicy.empty()) {
        argv.push_back("--retry-policy");
        argv.push_back(j.retryPolicy);
        // misar_sim rejects --retry-budget for non-budgeted policies,
        // so the override rides along only where it applies.
        if (spec.server.retryBudget > 0 && j.retryPolicy == "budgeted") {
            argv.push_back("--retry-budget");
            argv.push_back(formatRate(spec.server.retryBudget));
        }
    }
    if (!j.tenantMix.empty()) {
        argv.push_back("--tenants");
        argv.push_back(j.tenantMix);
    }
    return argv;
}

JobOutcome
classify(const PoolOutcome &o)
{
    if (o.timedOut)
        return JobOutcome::Timeout;
    if (!o.spawned || (o.exited && o.exitCode == 127))
        return JobOutcome::SpawnError;
    if (!o.exited)
        return JobOutcome::Crash;
    switch (o.exitCode) {
      case exitFinished:
        return JobOutcome::Finished;
      case exitDeadlock:
        return JobOutcome::Deadlock;
      case exitTickLimit:
        return JobOutcome::TickLimit;
      case exitFatal:
        return JobOutcome::Error;
      default:
        return JobOutcome::Crash;
    }
}

std::uint64_t
counterOf(const Json &counters, const std::string &name)
{
    return counters.at(name).uintOr(0);
}

/**
 * Fill a record from the job's JSON run report. The manifest's
 * outcome stays authoritative (the report of a crashed job says
 * "panic", of a timed-out job whatever its last flush said); the
 * report supplies the simulation-side numbers.
 */
void
ingestReport(JobRecord &r, const CampaignSpec &spec,
             const std::string &reportPath)
{
    std::string err;
    Json doc = parseJsonFile(reportPath, &err);
    if (!doc.isObj()) {
        if (r.outcome == JobOutcome::Finished)
            warn("job %u: unreadable run report %s (%s)", r.job.id,
                 reportPath.c_str(), err.c_str());
        return;
    }
    const Json &meta = doc.at("meta");
    r.makespan = meta.at("makespan").uintOr(0);
    r.hwCoverage = meta.at("hwCoverage").numberOr(0.0);
    const Json &counters = doc.at("stats").at("counters");
    r.hwOps = counterOf(counters, "sync.hwOps");
    r.swOps = counterOf(counters, "sync.swOps");
    r.silentLocks = counterOf(counters, "sync.silentLocks");
    for (const std::string &s : spec.stats)
        r.counters[s] = counterOf(counters, s);
    const Json &resil = doc.at("resilience");
    r.timeouts = resil.at("timeouts").uintOr(0);
    r.retries = resil.at("retries").uintOr(0);
    r.abortedOps = resil.at("abortedOps").uintOr(0);
    r.offlineSheds = resil.at("offlineSheds").uintOr(0);
    r.crossedSnoops = resil.at("crossedSnoops").uintOr(0);
    // Schema v2 blocks; absent in v1 reports (fields stay zeroed).
    if (doc.has("latency"))
        obs::LogHistogram::fromJson(doc.at("latency").at("syncWait"),
                                    r.syncWait);
    if (doc.has("heatmap")) {
        const Json &h = doc.at("heatmap");
        r.hasPressure = true;
        r.overflowEvents = h.at("overflowEvents").uintOr(0);
        r.omuEpisodes = h.at("omuEpisodes").uintOr(0);
        r.omuEpisodeTicks = h.at("omuEpisodeTicks").uintOr(0);
        r.omuHighWater = h.at("omuHighWater").uintOr(0);
        r.maxSliceOccupancy = h.at("maxSliceOccupancy").numberOr(0.0);
        r.maxNiQueueDepth = h.at("maxNiQueueDepth").numberOr(0.0);
    }
    // Schema v3 block; absent in older reports (fields stay zeroed).
    if (doc.has("server")) {
        const Json &sv = doc.at("server");
        r.hasServer = true;
        r.offeredRate = sv.at("offeredRate").numberOr(0.0);
        r.srvGenerated = sv.at("generated").uintOr(0);
        r.srvCompleted = sv.at("completed").uintOr(0);
        r.srvRejected = sv.at("rejected").uintOr(0);
        r.srvStranded = sv.at("stranded").uintOr(0);
        r.srvThroughput = sv.at("throughput").numberOr(0.0);
        r.srvKnee = sv.at("knee").boolOr(false);
        obs::LogHistogram::fromJson(sv.at("latency"), r.srvLatency);
        // Schema v4 extensions; absent in v3 reports (fields stay
        // zeroed, and goodput falls back to throughput).
        r.srvRejectedSlo = sv.at("rejectedSlo").uintOr(0);
        r.srvGoodput = sv.has("goodput")
                           ? sv.at("goodput").numberOr(0.0)
                           : r.srvThroughput;
        if (sv.has("retries"))
            r.srvRetries = sv.at("retries").at("attempts").uintOr(0);
        if (sv.has("tenants") && sv.at("tenants").isArr()) {
            for (const Json &tj : sv.at("tenants").arr) {
                JobRecord::TenantRecord tr;
                tr.name = tj.at("name").stringOr("");
                tr.generated = tj.at("generated").uintOr(0);
                tr.completed = tj.at("completed").uintOr(0);
                tr.rejected = tj.at("rejected").uintOr(0) +
                              tj.at("rejectedSlo").uintOr(0);
                tr.goodput = tj.at("goodput").numberOr(0.0);
                obs::LogHistogram::fromJson(tj.at("latency"),
                                            tr.latency);
                r.srvTenants.push_back(std::move(tr));
            }
        }
    }
}

} // namespace

std::string
jobReportRelPath(unsigned jobId)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "jobs/job_%06u.json", jobId);
    return buf;
}

bool
runCampaign(const CampaignSpec &spec, const EngineOptions &opts,
            std::vector<JobRecord> &out, CampaignRunStats &stats,
            std::string &err)
{
    const std::vector<JobSpec> jobs = spec.expand();
    const std::uint64_t hash = spec.gridHash();

    if (!ensureDir(opts.outDir) || !ensureDir(opts.outDir + "/jobs")) {
        err = "cannot create campaign directory " + opts.outDir;
        return false;
    }
    const std::string manifestPath = opts.outDir + "/manifest.jsonl";

    // Journaled terminal states from a previous (interrupted) run.
    std::map<unsigned, ManifestEntry> done;
    bool fresh = true;
    if (opts.resume) {
        struct stat st;
        if (::stat(manifestPath.c_str(), &st) == 0) {
            std::vector<ManifestEntry> entries;
            if (!Manifest::load(manifestPath, spec.name, hash, entries,
                                err))
                return false;
            for (ManifestEntry &e : entries) {
                if (e.job >= jobs.size() ||
                    jobs[e.job].key() != e.key) {
                    err = "manifest entry for job " +
                          std::to_string(e.job) +
                          " does not match the spec's grid";
                    return false;
                }
                done[e.job] = std::move(e);
            }
            fresh = false;
        }
    }

    Manifest manifest;
    if (!manifest.open(manifestPath, spec.name, jobs.size(), hash,
                       fresh)) {
        err = "cannot open manifest " + manifestPath;
        return false;
    }

    unsigned workers = opts.workers
                           ? opts.workers
                           : std::max(1u,
                                      std::thread::hardware_concurrency());
    ProcessPool pool(workers);

    stats = CampaignRunStats{};
    stats.workers = workers;
    stats.jobsTotal = static_cast<unsigned>(jobs.size());
    stats.jobsSkipped = static_cast<unsigned>(done.size());

    std::map<unsigned, unsigned> attempts;  // job id -> spawns
    std::map<unsigned, double> jobWallSec;  // summed over attempts
    bool stopped = false;
    unsigned completedNow = 0;
    unsigned runningNow = 0;
    unsigned retriesNow = 0;
    unsigned failedNow = 0;
    for (const auto &d : done)
        failedNow += d.second.outcome != "finished";
    StatusWriter status(opts.outDir + "/status.json", spec.name,
                        static_cast<unsigned>(jobs.size()),
                        static_cast<unsigned>(done.size()));

    auto makeTask = [&](const JobSpec &j) {
        PoolTask t;
        t.id = j.id;
        t.argv = jobArgv(spec, j, opts,
                         opts.outDir + "/" + jobReportRelPath(j.id));
        t.logPath = opts.outDir + "/" + jobLogRelPath(j.id);
        t.timeoutSec = spec.timeoutSec;
        return t;
    };

    const double t0 = nowSec();
    for (const JobSpec &j : jobs) {
        if (done.count(j.id))
            continue;
        // A fresh attempt must not inherit artifacts of a previous
        // (crashed or stale) attempt.
        ::unlink((opts.outDir + "/" + jobReportRelPath(j.id)).c_str());
        ::unlink((opts.outDir + "/" + jobLogRelPath(j.id)).c_str());
        ::unlink((opts.outDir + "/" + jobHeatmapRelPath(j.id)).c_str());
        pool.push(makeTask(j));
    }
    status.write(static_cast<unsigned>(done.size()), 0, failedNow,
                 retriesNow, stats.attempts, done.size() == jobs.size());

    auto onSpawn = [&](const PoolTask &t, pid_t pid) {
        ++attempts[t.id];
        ++stats.attempts;
        ++runningNow;
        if (static_cast<int>(t.id) == opts.chaosKillJob &&
            attempts[t.id] == 1) {
            warn("chaos: killing job %u's first attempt (pid %d)", t.id,
                 static_cast<int>(pid));
            ::kill(pid, SIGKILL);
        }
        status.write(static_cast<unsigned>(done.size()), runningNow,
                     failedNow, retriesNow, stats.attempts, false);
    };

    auto onDone = [&](const PoolTask &t, const PoolOutcome &o) {
        const JobSpec &j = jobs[t.id];
        JobOutcome oc = classify(o);
        jobWallSec[t.id] += o.wallSec;
        if (runningNow)
            --runningNow;

        if (jobOutcomeRetryable(oc) && attempts[t.id] <= spec.maxRetries &&
            !stopped) {
            if (opts.verbose)
                inform("job %u (%s) %s; retrying (%u/%u)", t.id,
                       j.key().c_str(), jobOutcomeName(oc),
                       attempts[t.id], spec.maxRetries);
            ::unlink(
                (opts.outDir + "/" + jobReportRelPath(t.id)).c_str());
            ::unlink(
                (opts.outDir + "/" + jobHeatmapRelPath(t.id)).c_str());
            ++retriesNow;
            status.write(static_cast<unsigned>(done.size()), runningNow,
                         failedNow, retriesNow, stats.attempts, false);
            pool.push(makeTask(j));
            return;
        }

        ManifestEntry e;
        e.job = t.id;
        e.key = j.key();
        e.outcome = jobOutcomeName(oc);
        e.exitCode = o.exited ? o.exitCode : -1;
        e.termSignal = o.exited ? 0 : o.termSignal;
        e.attempts = attempts[t.id];
        e.wallSec = jobWallSec[t.id];
        e.report = jobReportRelPath(t.id);
        manifest.append(e);
        done[t.id] = e;
        ++completedNow;
        ++stats.jobsRun;
        status.onJobDone();
        failedNow += oc != JobOutcome::Finished;
        status.write(static_cast<unsigned>(done.size()), runningNow,
                     failedNow, retriesNow, stats.attempts,
                     done.size() == jobs.size());
        if (opts.progress)
            std::fprintf(stderr,
                         "\r[%zu/%zu] running=%u failed=%u retries=%u "
                         "%.2f jobs/s eta %.0fs   ",
                         done.size(), jobs.size(), runningNow, failedNow,
                         retriesNow, status.jobsPerSec(),
                         status.etaSec(
                             static_cast<unsigned>(done.size())));
        if (opts.verbose)
            inform("job %u/%zu %s -> %s (%.2fs)", t.id, jobs.size(),
                   j.key().c_str(), jobOutcomeName(oc), o.wallSec);

        if (opts.stopAfter >= 0 &&
            completedNow >= static_cast<unsigned>(opts.stopAfter) &&
            !stopped) {
            warn("stop-after %d reached; not dispatching further jobs",
                 opts.stopAfter);
            stopped = true;
            pool.cancelQueued();
        }
    };

    pool.run(onDone, onSpawn);
    manifest.close();
    if (opts.progress)
        std::fprintf(stderr, "\n");

    stats.wallSec = nowSec() - t0;
    stats.busySec = pool.busySec();
    stats.complete = done.size() == jobs.size();
    status.write(static_cast<unsigned>(done.size()), 0, failedNow,
                 retriesNow, stats.attempts, stats.complete);

    // Aggregation input: every journaled job re-read from its report
    // in id order, so report bytes depend only on the grid and the
    // simulations — not on scheduling, retries, or resume boundaries.
    out.clear();
    out.reserve(jobs.size());
    for (const JobSpec &j : jobs) {
        JobRecord r;
        r.job = j;
        auto it = done.find(j.id);
        if (it != done.end()) {
            r.outcome = jobOutcomeFromName(it->second.outcome);
            ingestReport(r, spec, opts.outDir + "/" + it->second.report);
            if (r.outcome != JobOutcome::Finished)
                r.note =
                    readTail(opts.outDir + "/" + jobLogRelPath(j.id));
        }
        out.push_back(std::move(r));
    }
    return true;
}

std::vector<JobRecord>
runCampaignInProcess(const CampaignSpec &spec, const InProcessHooks &hooks)
{
    std::vector<JobRecord> out;
    for (const JobSpec &j : spec.expand()) {
        SystemConfig cfg;
        sync::SyncLib::Flavor flavor;
        if (!sys::cliPresetFor(j.preset.config, j.cores, j.preset.entries,
                               cfg, flavor))
            fatal("unknown preset config '%s' (validate the spec "
                  "before running it)",
                  j.preset.config.c_str());
        cfg.smtWays = j.preset.smt;
        cfg.simThreads = j.preset.threads;
        cfg.msa.hwSyncBitOpt = j.preset.hwsync;
        cfg.msa.omuEnabled = j.preset.omu;
        cfg.seed = j.seed;
        // Subprocess jobs run the profiler when serial (--stats-json
        // implies it in misar_sim), so the in-process path must too —
        // otherwise the two executors' records, and therefore the
        // byte-compared campaign reports, would diverge on syncWait.
        // The profiler is serial-only; threaded jobs omit it on both
        // executors the same way.
        cfg.obs.profileSync = j.preset.threads == 1;
        if (spec.obs.sampleInterval)
            cfg.obs.sampleInterval = spec.obs.sampleInterval;
        cfg.obs.heatmapEnabled = cfg.obs.heatmapEnabled || spec.obs.heatmap;
        if (hooks.tweak)
            hooks.tweak(j, cfg);
        cfg.validate();

        workload::RunOptions ro;
        ro.tickLimit = spec.tickLimit;
        ro.captureCounters = &spec.stats;
        // Mirror jobArgv's server flags: the sweep's rate axis and
        // overrides must reach in-process runs identically or the two
        // executors' reports would diverge.
        workload::AppSpec app = workload::appByName(j.app);
        if (j.arrivalRate > 0)
            app.server.arrivalRate = j.arrivalRate;
        if (!spec.server.serviceDist.empty()) {
            srv::ServiceDist d;
            if (!srv::parseServiceDist(spec.server.serviceDist, d))
                fatal("unknown server.serviceDist '%s' (validate the "
                      "spec before running it)",
                      spec.server.serviceDist.c_str());
            app.server.serviceDist = d;
        }
        if (spec.server.queueCap)
            app.server.queueCap = spec.server.queueCap;
        if (spec.server.slo)
            app.server.sloTicks = spec.server.slo;
        if (!j.retryPolicy.empty()) {
            srv::RetryPolicy p;
            if (!srv::parseRetryPolicy(j.retryPolicy, p))
                fatal("unknown retry policy '%s' (validate the spec "
                      "before running it)", j.retryPolicy.c_str());
            app.server.retryPolicy = p;
            if (spec.server.retryBudget > 0 &&
                p == srv::RetryPolicy::Budgeted)
                app.server.retryBudgetRatio = spec.server.retryBudget;
        }
        if (!j.tenantMix.empty()) {
            double hi = 0, lo = 0;
            if (!srv::parseTenantMix(j.tenantMix, hi, lo))
                fatal("bad tenant mix '%s' (validate the spec before "
                      "running it)", j.tenantMix.c_str());
            app.server.tenantHiRate = hi;
            app.server.tenantLoRate = lo;
            app.server.arrivalRate = hi + lo;
        }
        workload::RunResult rr = workload::runAppWithConfig(
            app, cfg, flavor, j.seed, j.preset.name, ro);

        JobRecord r;
        r.job = j;
        switch (rr.outcome) {
          case sys::RunOutcome::Finished:
            r.outcome = JobOutcome::Finished;
            break;
          case sys::RunOutcome::Deadlock:
            r.outcome = JobOutcome::Deadlock;
            break;
          case sys::RunOutcome::LimitReached:
            r.outcome = JobOutcome::TickLimit;
            break;
        }
        r.makespan = rr.makespan;
        r.hwCoverage = rr.hwCoverage;
        r.hwOps = rr.hwOps;
        r.swOps = rr.swOps;
        r.silentLocks = rr.silentLocks;
        r.timeouts = rr.timeouts;
        r.retries = rr.retries;
        r.abortedOps = rr.abortedOps;
        r.offlineSheds = rr.offlineSheds;
        r.crossedSnoops = rr.crossedSnoops;
        r.counters = rr.captured;
        r.syncWait = rr.syncWait;
        r.hasPressure = rr.hasPressure;
        r.overflowEvents = rr.overflowEvents;
        r.omuEpisodes = rr.omuEpisodes;
        r.omuEpisodeTicks = rr.omuEpisodeTicks;
        r.omuHighWater = rr.omuHighWater;
        r.maxSliceOccupancy = rr.maxSliceOccupancy;
        r.maxNiQueueDepth = rr.maxNiQueueDepth;
        if (rr.hasServer) {
            r.hasServer = true;
            r.offeredRate = rr.server.offeredRate;
            r.srvGenerated = rr.server.generated;
            r.srvCompleted = rr.server.completed;
            r.srvRejected = rr.server.rejected;
            r.srvStranded = rr.server.stranded;
            r.srvThroughput = rr.server.throughput;
            r.srvKnee = rr.server.knee;
            r.srvLatency = rr.server.latency;
            r.srvRejectedSlo = rr.server.rejectedSlo;
            r.srvRetries = rr.server.retries;
            r.srvGoodput = rr.server.goodput;
            for (const srv::TenantStats &ts : rr.server.tenants) {
                JobRecord::TenantRecord tr;
                tr.name = ts.name;
                tr.generated = ts.generated;
                tr.completed = ts.completed;
                tr.rejected = ts.rejected + ts.rejectedSlo;
                tr.goodput = ts.goodput;
                tr.latency = ts.latency;
                r.srvTenants.push_back(std::move(tr));
            }
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace orch
} // namespace misar
