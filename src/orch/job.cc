#include "orch/job.hh"

namespace misar {
namespace orch {

const char *
jobOutcomeName(JobOutcome o)
{
    switch (o) {
      case JobOutcome::Finished:
        return "finished";
      case JobOutcome::Deadlock:
        return "deadlock";
      case JobOutcome::TickLimit:
        return "tick-limit";
      case JobOutcome::Error:
        return "error";
      case JobOutcome::Crash:
        return "crash";
      case JobOutcome::Timeout:
        return "timeout";
      case JobOutcome::SpawnError:
        return "spawn-error";
      case JobOutcome::Missing:
        return "missing";
    }
    return "?";
}

JobOutcome
jobOutcomeFromName(const std::string &name)
{
    for (JobOutcome o :
         {JobOutcome::Finished, JobOutcome::Deadlock, JobOutcome::TickLimit,
          JobOutcome::Error, JobOutcome::Crash, JobOutcome::Timeout,
          JobOutcome::SpawnError})
        if (name == jobOutcomeName(o))
            return o;
    return JobOutcome::Missing;
}

} // namespace orch
} // namespace misar
