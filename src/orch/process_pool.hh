/**
 * @file
 * Fork/exec worker pool with wall-clock timeout enforcement.
 *
 * The pool runs queued command lines with at most N concurrent child
 * processes, redirecting each child's stdout+stderr to a log file.
 * A task whose wall-clock deadline passes is SIGKILLed and reported
 * as timed out. The completion callback may push further tasks (the
 * engine uses this to retry crashed jobs), so the pool drains queue
 * and running set together.
 *
 * The pool is single-threaded: it polls children with
 * waitpid(WNOHANG) on a short cadence, which also serves as the
 * timeout clock. Jobs are simulator runs lasting 0.1s..minutes, so
 * millisecond polling granularity is irrelevant to throughput.
 */

#ifndef MISAR_ORCH_PROCESS_POOL_HH
#define MISAR_ORCH_PROCESS_POOL_HH

#include <sys/types.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace misar {
namespace orch {

/** One command line to run. */
struct PoolTask
{
    unsigned id = 0;                ///< caller-chosen task identity
    std::vector<std::string> argv;  ///< argv[0] = executable path
    std::string logPath;            ///< stdout+stderr (appended)
    double timeoutSec = 0.0;        ///< 0 = no deadline
};

/** How one task attempt ended. */
struct PoolOutcome
{
    unsigned id = 0;
    bool spawned = false;  ///< fork succeeded (exec failure -> 127)
    bool exited = false;   ///< child exited (vs. was signaled)
    int exitCode = -1;     ///< valid when exited
    int termSignal = 0;    ///< valid when !exited
    bool timedOut = false; ///< pool killed it at the deadline
    double wallSec = 0.0;  ///< spawn-to-reap wall clock
};

class ProcessPool
{
  public:
    /** Called right after a task's child is forked. */
    using OnSpawn = std::function<void(const PoolTask &, pid_t)>;
    /** Called once per finished attempt; may push() new tasks. */
    using OnDone = std::function<void(const PoolTask &, const PoolOutcome &)>;

    explicit ProcessPool(unsigned workers);

    /** Enqueue a task (legal from inside an OnDone callback). */
    void push(PoolTask t);

    /** Run until both the queue and the running set are empty. */
    void run(const OnDone &onDone, const OnSpawn &onSpawn = nullptr);

    /**
     * Drop every queued (not yet spawned) task; running children
     * still finish and report. Used for early campaign stop.
     */
    void cancelQueued();

    unsigned workers() const { return nWorkers; }

    /** Sum of finished attempts' wall time (utilization metric). */
    double busySec() const { return totalBusySec; }

  private:
    struct Running
    {
        PoolTask task;
        double startSec = 0.0;
        double deadlineSec = 0.0; ///< 0 = none
        bool killed = false;
    };

    void spawnOne(const OnSpawn &onSpawn);

    unsigned nWorkers;
    std::vector<PoolTask> queue; ///< FIFO (front = next to run)
    std::map<pid_t, Running> running;
    double totalBusySec = 0.0;
};

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_PROCESS_POOL_HH
