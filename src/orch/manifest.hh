/**
 * @file
 * Append-only campaign journal (JSONL).
 *
 * The first line is a header binding the file to one campaign grid
 * (name, job count, grid hash); every later line records one job
 * that reached a terminal state. Lines are appended and fsync'd
 * one at a time, so a campaign killed at any instant leaves a valid
 * prefix: --resume replays the journal, skips the jobs it lists,
 * and runs only the remainder. A torn final line (kill mid-write)
 * is tolerated and ignored.
 */

#ifndef MISAR_ORCH_MANIFEST_HH
#define MISAR_ORCH_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace misar {
namespace orch {

/** One journaled terminal job state. */
struct ManifestEntry
{
    unsigned job = 0;    ///< JobSpec::id
    std::string key;     ///< JobSpec::key(), cross-checked on resume
    std::string outcome; ///< jobOutcomeName() string
    int exitCode = -1;   ///< simulator exit code (-1: signaled)
    int termSignal = 0;  ///< terminating signal (0: exited)
    unsigned attempts = 1;
    double wallSec = 0.0; ///< summed over attempts
    std::string report;   ///< run-report path relative to out-dir
};

class Manifest
{
  public:
    static constexpr int version = 1;

    /**
     * Open for appending. When @p fresh, the file is truncated and
     * a new header written; otherwise the file must already carry a
     * matching header (call load() first). Returns false on I/O
     * error.
     */
    bool open(const std::string &path, const std::string &campaign,
              std::size_t jobs, std::uint64_t gridHash, bool fresh);

    /** Append one terminal entry and fsync the journal. */
    bool append(const ManifestEntry &e);

    void close();
    ~Manifest() { close(); }

    /**
     * Read a journal. Header mismatches (wrong campaign/grid hash)
     * fail with @p err; a torn or corrupt trailing line is skipped
     * with a warning. @p out is the list of journaled jobs in file
     * order. Returns false when the file exists but cannot serve as
     * a resume base; a missing file is reported via @p err too.
     */
    static bool load(const std::string &path, const std::string &campaign,
                     std::uint64_t gridHash,
                     std::vector<ManifestEntry> &out, std::string &err);

  private:
    int fd = -1;
};

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_MANIFEST_HH
