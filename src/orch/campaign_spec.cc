#include "orch/campaign_spec.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "orch/json.hh"
#include "srv/arrival.hh"
#include "srv/server_stats.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"

namespace misar {
namespace orch {

/** Shortest exact decimal for a rate (matches CLI echo: "%g"). */
std::string
formatRate(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", rate);
    return buf;
}

std::string
JobSpec::key() const
{
    std::ostringstream os;
    os << preset.name << "|" << app << "|c" << cores << "|s" << seed
       << "|r" << rep;
    // Appended only for server sweeps: historical grids (and their
    // manifest hashes) keep their exact keys.
    if (arrivalRate > 0)
        os << "|a" << formatRate(arrivalRate);
    if (!retryPolicy.empty())
        os << "|p" << retryPolicy;
    if (!tenantMix.empty())
        os << "|t" << tenantMix;
    return os.str();
}

namespace {

bool
parsePreset(const Json &j, PresetSpec &p, std::string &err)
{
    if (j.isStr()) {
        p.name = p.config = j.str;
        return true;
    }
    if (!j.isObj()) {
        err = "presets entries must be strings or objects";
        return false;
    }
    p.config = j.at("config").stringOr(j.at("name").stringOr(""));
    p.name = j.at("name").stringOr(p.config);
    if (p.config.empty()) {
        err = "preset object needs a \"config\" (or \"name\") member";
        return false;
    }
    p.entries = static_cast<unsigned>(j.at("entries").uintOr(p.entries));
    p.hwsync = j.at("hwsync").boolOr(p.hwsync);
    p.omu = j.at("omu").boolOr(p.omu);
    p.smt = static_cast<unsigned>(j.at("smt").uintOr(p.smt));
    p.threads = static_cast<unsigned>(j.at("threads").uintOr(p.threads));
    if (j.has("seeds")) {
        const Json &s = j.at("seeds");
        if (!s.isArr()) {
            err = "preset \"seeds\" must be an array";
            return false;
        }
        for (const Json &e : s.arr)
            p.seeds.push_back(e.uintOr(1));
    }
    return true;
}

} // namespace

bool
CampaignSpec::parse(const std::string &text, CampaignSpec &out,
                    std::string &err)
{
    Json root = parseJson(text, &err);
    if (root.isNull() && !err.empty())
        return false;
    if (!root.isObj()) {
        err = "campaign spec must be a JSON object";
        return false;
    }

    CampaignSpec s;
    s.name = root.at("name").stringOr(s.name);

    if (!root.at("presets").isArr() || root.at("presets").arr.empty()) {
        err = "spec needs a non-empty \"presets\" array";
        return false;
    }
    for (const Json &j : root.at("presets").arr) {
        PresetSpec p;
        if (!parsePreset(j, p, err))
            return false;
        s.presets.push_back(std::move(p));
    }

    const Json &apps = root.at("apps");
    if (apps.isStr()) {
        s.apps = {apps.str}; // "all" / "headline" shorthands
    } else if (apps.isArr() && !apps.arr.empty()) {
        for (const Json &j : apps.arr)
            s.apps.push_back(j.stringOr(""));
    } else {
        err = "spec needs an \"apps\" array (or \"all\"/\"headline\")";
        return false;
    }

    if (root.has("cores")) {
        if (!root.at("cores").isArr()) {
            err = "\"cores\" must be an array of core counts";
            return false;
        }
        s.cores.clear();
        for (const Json &j : root.at("cores").arr)
            s.cores.push_back(static_cast<unsigned>(j.uintOr(0)));
    }
    if (root.has("seeds")) {
        if (!root.at("seeds").isArr()) {
            err = "\"seeds\" must be an array";
            return false;
        }
        s.seeds.clear();
        for (const Json &j : root.at("seeds").arr)
            s.seeds.push_back(j.uintOr(1));
    }
    s.reps = static_cast<unsigned>(root.at("reps").uintOr(s.reps));
    s.tickLimit = root.at("tickLimit").uintOr(s.tickLimit);
    s.timeoutSec = root.at("timeoutSec").numberOr(s.timeoutSec);
    s.maxRetries =
        static_cast<unsigned>(root.at("maxRetries").uintOr(s.maxRetries));
    s.baseline = root.at("baseline").stringOr(s.baseline);
    if (root.has("stats")) {
        if (!root.at("stats").isArr()) {
            err = "\"stats\" must be an array of counter names";
            return false;
        }
        for (const Json &j : root.at("stats").arr)
            s.stats.push_back(j.stringOr(""));
    }
    if (root.has("obs")) {
        const Json &o = root.at("obs");
        if (!o.isObj()) {
            err = "\"obs\" must be an object";
            return false;
        }
        s.obs.sampleInterval = o.at("sampleInterval").uintOr(0);
        s.obs.heatmap = o.at("heatmap").boolOr(false);
    }
    if (root.has("server")) {
        const Json &o = root.at("server");
        if (!o.isObj()) {
            err = "\"server\" must be an object";
            return false;
        }
        // Unknown keys are rejected loudly: a typo'd "arrivalRate"
        // would otherwise silently run the whole sweep at defaults.
        for (const auto &kv : o.obj)
            if (kv.first != "arrivalRates" && kv.first != "serviceDist" &&
                kv.first != "queueCap" && kv.first != "slo" &&
                kv.first != "retryPolicies" &&
                kv.first != "retryBudget" &&
                kv.first != "tenantMixes") {
                err = "unknown \"server\" key '" + kv.first +
                      "' (expected arrivalRates, serviceDist, "
                      "queueCap, slo, retryPolicies, retryBudget, "
                      "tenantMixes)";
                return false;
            }
        s.server.present = true;
        if (o.has("arrivalRates")) {
            if (!o.at("arrivalRates").isArr() ||
                o.at("arrivalRates").arr.empty()) {
                err = "\"server.arrivalRates\" must be a non-empty "
                      "array of rates";
                return false;
            }
            for (const Json &j : o.at("arrivalRates").arr) {
                if (!j.isNum() || j.num <= 0) {
                    err = "\"server.arrivalRates\" entries must be "
                          "positive numbers";
                    return false;
                }
                s.server.arrivalRates.push_back(j.num);
            }
        }
        s.server.serviceDist = o.at("serviceDist").stringOr("");
        s.server.queueCap = o.at("queueCap").uintOr(0);
        if (o.has("slo")) {
            const Json &v = o.at("slo");
            if (!v.isNum() || v.uintOr(0) == 0) {
                err = "\"server.slo\" must be a positive tick count";
                return false;
            }
            s.server.slo = v.uintOr(0);
        }
        if (o.has("retryPolicies")) {
            if (!o.at("retryPolicies").isArr() ||
                o.at("retryPolicies").arr.empty()) {
                err = "\"server.retryPolicies\" must be a non-empty "
                      "array of policy names";
                return false;
            }
            for (const Json &j : o.at("retryPolicies").arr) {
                srv::RetryPolicy p;
                if (!srv::parseRetryPolicy(j.stringOr(""), p)) {
                    err = "unknown server.retryPolicies entry '" +
                          j.stringOr("") + "' (expected one of: " +
                          srv::retryPolicyNames() + ")";
                    return false;
                }
                s.server.retryPolicies.push_back(j.stringOr(""));
            }
        }
        if (o.has("retryBudget")) {
            const Json &v = o.at("retryBudget");
            if (!v.isNum() || v.num <= 0) {
                err = "\"server.retryBudget\" must be a positive "
                      "ratio";
                return false;
            }
            s.server.retryBudget = v.num;
        }
        if (o.has("tenantMixes")) {
            if (!o.at("tenantMixes").isArr() ||
                o.at("tenantMixes").arr.empty()) {
                err = "\"server.tenantMixes\" must be a non-empty "
                      "array of \"HI:LO\" rate strings";
                return false;
            }
            for (const Json &j : o.at("tenantMixes").arr) {
                double hi = 0, lo = 0;
                if (!srv::parseTenantMix(j.stringOr(""), hi, lo)) {
                    err = "bad server.tenantMixes entry '" +
                          j.stringOr("") +
                          "' (expected \"HI:LO\" positive rates)";
                    return false;
                }
                s.server.tenantMixes.push_back(j.stringOr(""));
            }
        }
        if (!s.server.tenantMixes.empty() &&
            !s.server.arrivalRates.empty()) {
            err = "server.tenantMixes and server.arrivalRates are "
                  "mutually exclusive (each mix fixes its own total "
                  "rate)";
            return false;
        }
        if (s.server.retryBudget > 0) {
            bool budgeted = false;
            for (const std::string &p : s.server.retryPolicies)
                budgeted |= p == "budgeted";
            if (!budgeted) {
                err = "server.retryBudget needs \"budgeted\" in "
                      "server.retryPolicies";
                return false;
            }
        }
    }

    out = std::move(s);
    return true;
}

bool
CampaignSpec::parseFile(const std::string &path, CampaignSpec &out,
                        std::string &err)
{
    std::ifstream f(path);
    if (!f) {
        err = "cannot open " + path;
        return false;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    return parse(ss.str(), out, err);
}

std::string
CampaignSpec::validate()
{
    // Expand the app shorthands first so expand() sees real names.
    // "all" deliberately stays the paper's 26 benchmarks — server
    // workloads have their own "server" shorthand so historical grid
    // hashes never change.
    if (apps.size() == 1 &&
        (apps[0] == "all" || apps[0] == "headline" ||
         apps[0] == "server")) {
        std::vector<std::string> expanded;
        if (apps[0] == "headline") {
            expanded = workload::headlineApps();
        } else if (apps[0] == "server") {
            for (const workload::AppSpec &a : workload::serverCatalog())
                expanded.push_back(a.name);
        } else {
            for (const workload::AppSpec &a : workload::appCatalog())
                expanded.push_back(a.name);
        }
        apps = std::move(expanded);
    }
    for (const std::string &a : apps)
        if (!workload::findApp(a))
            return "unknown app '" + a + "'";

    if (server.present) {
        if (!server.serviceDist.empty()) {
            srv::ServiceDist d;
            if (!srv::parseServiceDist(server.serviceDist, d))
                return "unknown server.serviceDist '" +
                       server.serviceDist + "' (expected one of: " +
                       srv::serviceDistNames() + ")";
        }
        for (const std::string &a : apps) {
            const workload::AppSpec *spec = workload::findApp(a);
            if (!spec->server.enabled)
                return "\"server\" sweep includes non-server app '" +
                       a + "'";
            const bool open_only_axes =
                !server.arrivalRates.empty() || server.slo > 0 ||
                !server.retryPolicies.empty() ||
                !server.tenantMixes.empty();
            if (open_only_axes &&
                spec->server.mode == srv::ArrivalMode::Closed)
                return "server arrivalRates/slo/retryPolicies/"
                       "tenantMixes do not apply to closed-loop app '" +
                       a + "'";
        }
    }

    if (presets.empty())
        return "no presets";
    SystemConfig cfg;
    sync::SyncLib::Flavor fl;
    for (const PresetSpec &p : presets) {
        if (!sys::cliPresetFor(p.config, 16, p.entries, cfg, fl))
            return "unknown preset config '" + p.config + "'";
        if (p.name.empty())
            return "preset with empty name";
    }
    for (std::size_t i = 0; i < presets.size(); ++i)
        for (std::size_t j = i + 1; j < presets.size(); ++j)
            if (presets[i].name == presets[j].name)
                return "duplicate preset name '" + presets[i].name + "'";

    if (cores.empty())
        return "no core counts";
    for (unsigned c : cores) {
        unsigned dim = static_cast<unsigned>(std::lround(std::sqrt(c)));
        if (c == 0 || dim * dim != c)
            return "core count " + std::to_string(c) +
                   " is not a perfect square";
    }
    if (seeds.empty())
        return "no seeds";
    if (reps == 0)
        return "reps must be >= 1";

    if (!baseline.empty()) {
        bool found = false;
        for (const PresetSpec &p : presets)
            found |= p.name == baseline;
        if (!found)
            return "baseline '" + baseline + "' is not a preset name";
    }

    // Heatmap timelines are driven by the stat sampler; give it a
    // sensible cadence when the spec asks for heatmaps but no rate.
    if (obs.heatmap && obs.sampleInterval == 0)
        obs.sampleInterval = 10000;
    return "";
}

std::vector<JobSpec>
CampaignSpec::expand() const
{
    std::vector<JobSpec> jobs;
    unsigned id = 0;
    // Unused axes collapse to a single inert value, keeping job keys
    // in their historical form (no "|a"/"|p"/"|t" suffixes).
    const std::vector<double> rates =
        server.arrivalRates.empty() ? std::vector<double>{0.0}
                                    : server.arrivalRates;
    const std::vector<std::string> policies =
        server.retryPolicies.empty() ? std::vector<std::string>{""}
                                     : server.retryPolicies;
    const std::vector<std::string> mixes =
        server.tenantMixes.empty() ? std::vector<std::string>{""}
                                   : server.tenantMixes;
    for (const PresetSpec &p : presets) {
        const std::vector<std::uint64_t> &ss =
            p.seeds.empty() ? seeds : p.seeds;
        for (const std::string &a : apps) {
            for (unsigned c : cores) {
                for (double rate : rates) {
                    for (const std::string &policy : policies) {
                        for (const std::string &mix : mixes) {
                            for (std::uint64_t seed : ss) {
                                for (unsigned r = 0; r < reps; ++r) {
                                    JobSpec j;
                                    j.id = id++;
                                    j.preset = p;
                                    j.app = a;
                                    j.cores = c;
                                    j.seed = seed;
                                    j.rep = r;
                                    j.arrivalRate = rate;
                                    j.retryPolicy = policy;
                                    j.tenantMix = mix;
                                    jobs.push_back(std::move(j));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

std::uint64_t
CampaignSpec::gridHash() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    auto mix = [&h](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 0x100000001b3ULL;
        }
        h ^= ';';
        h *= 0x100000001b3ULL;
    };
    for (const JobSpec &j : expand())
        mix(j.key());
    mix(std::to_string(tickLimit));
    return h;
}

} // namespace orch
} // namespace misar
