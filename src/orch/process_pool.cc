#include "orch/process_pool.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "sim/logging.hh"

namespace misar {
namespace orch {

namespace {

double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

ProcessPool::ProcessPool(unsigned workers)
    : nWorkers(workers ? workers : 1)
{
}

void
ProcessPool::push(PoolTask t)
{
    queue.push_back(std::move(t));
}

void
ProcessPool::cancelQueued()
{
    queue.clear();
}

void
ProcessPool::spawnOne(const OnSpawn &onSpawn)
{
    PoolTask task = std::move(queue.front());
    queue.erase(queue.begin());

    pid_t pid = ::fork();
    if (pid < 0) {
        // Report the attempt as unspawnable via a synthetic child:
        // the caller's OnDone sees spawned=false through the running
        // map would never fire, so fail fast here instead.
        panic("fork failed: %s", std::strerror(errno));
    }
    if (pid == 0) {
        // Child: redirect stdout+stderr to the log, then exec.
        if (!task.logPath.empty()) {
            int fd = ::open(task.logPath.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                if (fd > STDERR_FILENO)
                    ::close(fd);
            }
        }
        std::vector<char *> argv;
        argv.reserve(task.argv.size() + 1);
        for (const std::string &a : task.argv)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        // exec failed: 127 is the shell's "command not found".
        ::_exit(127);
    }

    Running r;
    r.task = std::move(task);
    r.startSec = nowSec();
    r.deadlineSec =
        r.task.timeoutSec > 0 ? r.startSec + r.task.timeoutSec : 0.0;
    running.emplace(pid, std::move(r));
    if (onSpawn)
        onSpawn(running[pid].task, pid);
}

void
ProcessPool::run(const OnDone &onDone, const OnSpawn &onSpawn)
{
    while (!queue.empty() || !running.empty()) {
        while (!queue.empty() && running.size() < nWorkers)
            spawnOne(onSpawn);

        // Reap everything that has finished.
        bool reaped = false;
        for (auto it = running.begin(); it != running.end();) {
            int status = 0;
            pid_t r = ::waitpid(it->first, &status, WNOHANG);
            if (r == 0) {
                ++it;
                continue;
            }
            Running done = std::move(it->second);
            it = running.erase(it);
            reaped = true;

            PoolOutcome out;
            out.id = done.task.id;
            out.spawned = true;
            out.wallSec = nowSec() - done.startSec;
            totalBusySec += out.wallSec;
            if (r < 0) {
                // Shouldn't happen (we forked it); classify as crash.
                out.exited = false;
                out.termSignal = SIGKILL;
            } else if (WIFEXITED(status)) {
                out.exited = true;
                out.exitCode = WEXITSTATUS(status);
            } else if (WIFSIGNALED(status)) {
                out.exited = false;
                out.termSignal = WTERMSIG(status);
            }
            out.timedOut = done.killed;
            onDone(done.task, out);
        }
        if (reaped)
            continue; // callbacks may have queued work; spawn first

        // Enforce deadlines, then sleep a poll interval.
        double now = nowSec();
        for (auto &[pid, r] : running) {
            if (!r.killed && r.deadlineSec > 0 && now >= r.deadlineSec) {
                warn("task %u exceeded its %.1fs timeout; killing",
                     r.task.id, r.task.timeoutSec);
                r.killed = true;
                ::kill(pid, SIGKILL);
            }
        }
        if (!running.empty())
            ::usleep(2000);
    }
}

} // namespace orch
} // namespace misar
