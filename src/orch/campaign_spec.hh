/**
 * @file
 * Campaign specification: the declarative description of one
 * experiment sweep.
 *
 * A spec is a cartesian grid — presets x apps x core counts x seeds
 * x repetitions — plus per-job execution policy (tick limit,
 * wall-clock timeout, retry budget) and aggregation directives
 * (baseline preset for speedups, extra stat counters to collect per
 * cell). Specs are written as JSON (schema in EXPERIMENTS.md,
 * examples under bench/campaigns/) and expand into a deterministic,
 * stably-numbered job list: job ids depend only on the spec, never
 * on execution order, so a resumed campaign and a fresh one agree on
 * what job 17 is.
 */

#ifndef MISAR_ORCH_CAMPAIGN_SPEC_HH
#define MISAR_ORCH_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace misar {
namespace orch {

/** One column of the sweep: a simulator configuration to run. */
struct PresetSpec
{
    /** Cell label in reports; defaults to the config name. */
    std::string name;
    /** misar_sim --config value (see sys::cliPresetNames()). */
    std::string config;
    unsigned entries = 2; ///< MSA entries per tile
    bool hwsync = true;   ///< HWSync-bit optimization
    bool omu = true;      ///< overflow management unit
    unsigned smt = 1;     ///< hardware threads per core
    /** Host worker threads for the simulation kernel (misar_sim
     *  --threads). Any value produces identical statistics; > 1
     *  trades determinism-preserving PDES overhead for wall clock. */
    unsigned threads = 1;
    /** Seed override for this preset (empty = the spec's seeds). */
    std::vector<std::uint64_t> seeds;
};

/** Shortest exact decimal rendering of an arrival rate ("%g") —
 *  shared by job keys, CLI argv, and aggregation cell keys so every
 *  layer spells the same rate identically. */
std::string formatRate(double rate);

/** One fully-resolved job of the expanded grid. */
struct JobSpec
{
    unsigned id = 0; ///< position in the expansion (stable)
    PresetSpec preset;
    std::string app;
    unsigned cores = 16;
    std::uint64_t seed = 1;
    unsigned rep = 0;
    /**
     * Offered load for server workloads, requests per kilotick
     * (0 = no arrival-rate axis; the app default applies). Only
     * non-zero when the spec has a "server" sweep, so grids without
     * one keep their historical keys and gridHash.
     */
    double arrivalRate = 0.0;

    /**
     * Retry-policy axis value ("none"/"naive"/"budgeted"; "" = no
     * axis). Like arrivalRate, empty keeps historical keys intact.
     */
    std::string retryPolicy;

    /**
     * Tenant-mix axis value ("HI:LO" rates; "" = single tenant).
     * A mix implies its own total arrival rate, so specs use either
     * arrivalRates or tenantMixes, never both.
     */
    std::string tenantMix;

    /** Stable identity string (manifest cross-checking). */
    std::string key() const;
};

/** A parsed campaign specification. */
struct CampaignSpec
{
    std::string name = "campaign";
    std::vector<PresetSpec> presets;
    /** Workload names; "all" / "headline" expand the catalog. */
    std::vector<std::string> apps;
    std::vector<unsigned> cores = {16};
    std::vector<std::uint64_t> seeds = {1};
    unsigned reps = 1;

    /** Per-job simulated-tick budget (runDetailed limit). */
    std::uint64_t tickLimit = 2000000000ULL;
    /** Per-job wall-clock timeout in seconds (0 = none). */
    double timeoutSec = 300.0;
    /** Retries after a crash/timeout before a job is abandoned. */
    unsigned maxRetries = 2;

    /** Preset name speedups are computed against ("" = none). */
    std::string baseline;
    /** Extra StatRegistry counters aggregated per cell. */
    std::vector<std::string> stats;

    /**
     * Per-job observability directives (spec "obs" object). These
     * add output artifacts without changing simulated behaviour, so
     * they are deliberately NOT part of gridHash(): a resumed
     * campaign may turn heatmaps on or off without invalidating the
     * manifest.
     */
    struct ObsSpec
    {
        /** Stat-sampler tick interval for each job (0 = off). */
        std::uint64_t sampleInterval = 0;
        /** Write per-job heatmap.json resource-pressure matrices. */
        bool heatmap = false;
    };
    ObsSpec obs;

    /**
     * Server-workload sweep directives (spec "server" object). The
     * arrival rates become a grid axis between cores and seeds; the
     * distribution / queue-capacity overrides apply to every job.
     * Only meaningful when every app is an open-loop server-* app
     * (validate() enforces this).
     */
    struct ServerSweep
    {
        bool present = false;
        /** Offered loads in requests per kilotick (the sweep axis). */
        std::vector<double> arrivalRates;
        /** Service-distribution override ("" = app default). */
        std::string serviceDist;
        /** Dispatch-queue capacity override (0 = app default). */
        std::uint64_t queueCap = 0;
        /** Latency SLO in ticks for every job (0 = no SLO). */
        std::uint64_t slo = 0;
        /** Retry-policy axis ("none"/"naive"/"budgeted"). */
        std::vector<std::string> retryPolicies;
        /** Budget ratio for budgeted-policy jobs (0 = app default). */
        double retryBudget = 0.0;
        /**
         * Tenant-mix axis ("HI:LO" rate strings). Each mix fixes its
         * own total arrival rate, so this axis and arrivalRates are
         * mutually exclusive.
         */
        std::vector<std::string> tenantMixes;
    };
    ServerSweep server;

    /**
     * Parse the JSON text of a spec file. Returns false and sets
     * @p err on malformed JSON or structurally invalid fields;
     * semantic checks (names exist, cores square) live in
     * validate().
     */
    static bool parse(const std::string &text, CampaignSpec &out,
                      std::string &err);

    /** parse() applied to a file's contents. */
    static bool parseFile(const std::string &path, CampaignSpec &out,
                          std::string &err);

    /**
     * Semantic validation: expands "all"/"headline" app shorthands
     * against the catalog and checks every preset config, app name,
     * core count and the baseline reference. Returns "" when valid,
     * else a one-line error.
     */
    std::string validate();

    /** Expand the grid in deterministic order, ids 0..N-1. */
    std::vector<JobSpec> expand() const;

    /**
     * FNV-1a hash over the expanded job identities and the tick
     * limit. Stored in the manifest header so --resume refuses to
     * mix jobs from a different grid.
     */
    std::uint64_t gridHash() const;
};

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_CAMPAIGN_SPEC_HH
