/**
 * @file
 * Terminal job states and the per-job data record the aggregator
 * consumes. A JobRecord is produced either by parsing a subprocess
 * job's JSON run report (misar_campaign) or directly from a
 * RunResult (in-process engine used by tests and the fig6/resil
 * benches) — both paths yield identical values for identical seeds,
 * which is what makes parallel campaigns bit-reproducible against
 * the serial harnesses.
 */

#ifndef MISAR_ORCH_JOB_HH
#define MISAR_ORCH_JOB_HH

#include <cstdint>
#include <map>
#include <string>

#include "obs/histogram.hh"
#include "orch/campaign_spec.hh"
#include "sim/types.hh"

namespace misar {
namespace orch {

/** How a job ended (superset of sys::RunOutcome: adds host failures). */
enum class JobOutcome
{
    Finished,   ///< simulator exit 0
    Deadlock,   ///< simulator reported a sync deadlock (exit 40)
    TickLimit,  ///< simulated-tick budget exhausted (exit 41)
    Error,      ///< fatal(): bad config/flags (exit 1, never retried)
    Crash,      ///< killed by a signal / abnormal exit (retried)
    Timeout,    ///< wall-clock deadline hit, SIGKILLed (retried)
    SpawnError, ///< binary missing / exec failed (exit 127)
    Missing,    ///< never ran (campaign stopped before this job)
};

const char *jobOutcomeName(JobOutcome o);

/** Parse a jobOutcomeName() string; Missing for anything unknown. */
JobOutcome jobOutcomeFromName(const std::string &name);

/** True for outcomes another attempt could plausibly change. */
inline bool
jobOutcomeRetryable(JobOutcome o)
{
    return o == JobOutcome::Crash || o == JobOutcome::Timeout;
}

/** One job's aggregation-ready results. */
struct JobRecord
{
    JobSpec job;
    JobOutcome outcome = JobOutcome::Missing;

    Tick makespan = 0;
    double hwCoverage = 0.0;
    std::uint64_t hwOps = 0;
    std::uint64_t swOps = 0;
    std::uint64_t silentLocks = 0;

    /** @name Resilience summary (run report "resilience" block). @{ */
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t abortedOps = 0;
    std::uint64_t offlineSheds = 0;
    std::uint64_t crossedSnoops = 0;
    /** @} */

    /** Spec-selected StatRegistry counters. */
    std::map<std::string, std::uint64_t> counters;

    /**
     * Run-level sync-wait distribution (run report "latency" block).
     * Mergeable across reps; empty when the job's report predates
     * schema v2 or the profiler did not run.
     */
    obs::LogHistogram syncWait;

    /** @name Resource-pressure summary (report "heatmap" block). @{ */
    /** True when the job's report carried a heatmap summary. */
    bool hasPressure = false;
    std::uint64_t overflowEvents = 0;
    std::uint64_t omuEpisodes = 0;
    std::uint64_t omuEpisodeTicks = 0;
    std::uint64_t omuHighWater = 0;
    double maxSliceOccupancy = 0.0;
    double maxNiQueueDepth = 0.0;
    /** @} */

    /** @name Server-run accounting (report "server" block). @{ */
    /** True when the job's report carried a server block. */
    bool hasServer = false;
    double offeredRate = 0.0;
    std::uint64_t srvGenerated = 0;
    std::uint64_t srvCompleted = 0;
    std::uint64_t srvRejected = 0;
    std::uint64_t srvStranded = 0;
    double srvThroughput = 0.0;
    bool srvKnee = false;
    /** Per-request latency; mergeable across reps like syncWait. */
    obs::LogHistogram srvLatency;
    /** Final SLO-admission sheds (schema v4; 0 in older reports). */
    std::uint64_t srvRejectedSlo = 0;
    /** Retry attempts beyond first tries (schema v4). */
    std::uint64_t srvRetries = 0;
    /** SLO-met completions per kilotick; == srvThroughput when the
     *  job ran without an SLO (or predates schema v4). */
    double srvGoodput = 0.0;

    /** Per-tenant slice (schema v4 "tenants"; empty single-tenant). */
    struct TenantRecord
    {
        std::string name;
        std::uint64_t generated = 0;
        std::uint64_t completed = 0;
        std::uint64_t rejected = 0; ///< full-ring + SLO final sheds
        double goodput = 0.0;
        obs::LogHistogram latency;
    };
    std::vector<TenantRecord> srvTenants;
    /** @} */

    /** Failure context (log tail) for non-Finished outcomes. */
    std::string note;
};

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_JOB_HH
