/**
 * @file
 * Campaign engine: expands a CampaignSpec and executes the job list.
 *
 * Two executors share the same JobRecord output (and therefore the
 * same aggregation path):
 *
 *  - runCampaign(): a fork/exec worker pool runs each job as an
 *    isolated misar_sim process, enforcing wall-clock timeouts
 *    (kill + bounded retry), classifying outcomes from exit codes
 *    (see orch/exit_codes.hh), journaling every terminal job to the
 *    append-only manifest (resume support), and re-reading each
 *    job's JSON run report for aggregation.
 *
 *  - runCampaignInProcess(): the same grid executed serially in
 *    this process through workload::runAppWithConfig. Used by unit
 *    tests and the fig6/resil bench harnesses; produces identical
 *    JobRecords for identical seeds (simulation is deterministic),
 *    which is what lets a parallel campaign reproduce the serial
 *    benches bit-for-bit.
 */

#ifndef MISAR_ORCH_ENGINE_HH
#define MISAR_ORCH_ENGINE_HH

#include <functional>
#include <string>
#include <vector>

#include "orch/job.hh"
#include "sim/config.hh"

namespace misar {
namespace orch {

/** Options for the subprocess executor. */
struct EngineOptions
{
    std::string outDir = "campaign-out";
    /** Parallel worker processes (0 = hardware concurrency). */
    unsigned workers = 0;
    /** Skip jobs already journaled in the manifest. */
    bool resume = false;
    /** Path to the misar_sim binary. */
    std::string simPath = "misar_sim";
    /** Print per-job progress lines. */
    bool verbose = true;
    /**
     * Live single-line stderr ticker (done/running/failed counts,
     * EWMA job rate, ETA). The same numbers are always written to
     * <outDir>/status.json regardless of this flag.
     */
    bool progress = false;

    /** @name Failure-injection hooks (CI / tests). @{ */
    /** SIGKILL this job id's first attempt right after spawn. */
    int chaosKillJob = -1;
    /** Stop dispatching after this many jobs complete (resumable). */
    int stopAfter = -1;
    /** @} */
};

/** Host-side execution measurements for one engine invocation. */
struct CampaignRunStats
{
    unsigned workers = 0;
    unsigned jobsTotal = 0;   ///< grid size
    unsigned jobsRun = 0;     ///< executed by this invocation
    unsigned jobsSkipped = 0; ///< satisfied from the manifest
    unsigned attempts = 0;    ///< spawns, including retries
    double wallSec = 0.0;
    double busySec = 0.0; ///< summed child wall time
    bool complete = false;

    double
    workerUtilization() const
    {
        return workers && wallSec > 0.0
                   ? busySec / (workers * wallSec)
                   : 0.0;
    }
};

/**
 * Run @p spec (validate() it first) under the process pool. On
 * success @p out holds one record per grid job in id order (outcome
 * Missing for jobs an early stop never ran). Returns false on setup
 * errors (unusable out-dir, resume mismatch) with @p err set.
 */
bool runCampaign(const CampaignSpec &spec, const EngineOptions &opts,
                 std::vector<JobRecord> &out, CampaignRunStats &stats,
                 std::string &err);

/** Per-job config customization hook for the in-process engine. */
struct InProcessHooks
{
    std::function<void(const JobSpec &, SystemConfig &)> tweak;
};

/** Serial in-process execution of the full grid (id order). */
std::vector<JobRecord> runCampaignInProcess(
    const CampaignSpec &spec, const InProcessHooks &hooks = {});

/** The per-job run-report path, relative to the out-dir. */
std::string jobReportRelPath(unsigned jobId);

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_ENGINE_HH
