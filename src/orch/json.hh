/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * The campaign engine both reads JSON (campaign specs, per-job run
 * reports, manifest lines) and writes it (campaign reports); writing
 * is done with hand-formatted streams (as in obs/run_report) for
 * deterministic byte output, so only parsing lives here. The parser
 * accepts exactly the JSON we emit plus ordinary hand-written specs:
 * objects, arrays, strings with the standard escapes, finite
 * numbers, booleans and null.
 */

#ifndef MISAR_ORCH_JSON_HH
#define MISAR_ORCH_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace misar {
namespace orch {

/** One parsed JSON value (a tagged union over the JSON kinds). */
struct Json
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool isNull() const { return kind == Null; }
    bool isObj() const { return kind == Obj; }
    bool isArr() const { return kind == Arr; }
    bool isStr() const { return kind == Str; }
    bool isNum() const { return kind == Num; }

    /** Object member lookup; a shared Null value when absent. */
    const Json &at(const std::string &key) const;

    /** Member present (objects only)? */
    bool has(const std::string &key) const;

    /** This value as a number, or @p def when not a number. */
    double numberOr(double def) const { return isNum() ? num : def; }

    /** This value as a non-negative integer, or @p def. */
    std::uint64_t
    uintOr(std::uint64_t def) const
    {
        if (!isNum() || num < 0)
            return def;
        return static_cast<std::uint64_t>(num);
    }

    /** This value as a string, or @p def when not a string. */
    std::string
    stringOr(const std::string &def) const
    {
        return isStr() ? str : def;
    }

    /** This value as a bool, or @p def when not a bool. */
    bool boolOr(bool def) const { return kind == Bool ? boolean : def; }
};

/**
 * Parse @p text. On failure returns a Null value and, when @p err is
 * non-null, stores a one-line message with the byte offset.
 */
Json parseJson(const std::string &text, std::string *err = nullptr);

/** parseJson over a file's entire contents ("" read errors too). */
Json parseJsonFile(const std::string &path, std::string *err = nullptr);

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_JSON_HH
