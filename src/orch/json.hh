/**
 * @file
 * Compatibility alias: the JSON document model and parser moved to
 * util/json.hh so the observability emitters and the campaign engine
 * share one implementation (and one escaping policy). Orchestration
 * code keeps using orch::Json / orch::parseJson through these
 * aliases.
 */

#ifndef MISAR_ORCH_JSON_HH
#define MISAR_ORCH_JSON_HH

#include "util/json.hh"

namespace misar {
namespace orch {

using Json = util::Json;
using util::parseJson;
using util::parseJsonFile;
using JsonWriter = util::JsonWriter;

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_JSON_HH
