#include "orch/aggregate.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/trace.hh" // jsonEscape

namespace misar {
namespace orch {

namespace {

std::string
cellKey(const std::string &preset, const std::string &app, unsigned cores,
        double arrivalRate, const std::string &retryPolicy,
        const std::string &tenantMix)
{
    std::string key = preset + "|" + app + "|" + std::to_string(cores);
    // Appended only for the corresponding sweeps, mirroring
    // JobSpec::key(): historical campaigns keep their exact cell keys.
    if (arrivalRate > 0)
        key += "|a" + formatRate(arrivalRate);
    if (!retryPolicy.empty())
        key += "|p" + retryPolicy;
    if (!tenantMix.empty())
        key += "|t" + tenantMix;
    return key;
}

/** Fixed-width decimal formatting (deterministic report bytes). */
std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

/** Two-sided 95% Student-t critical value for @p df degrees of
 *  freedom (the normal 1.96 beyond the tabulated range). */
double
tCrit95(unsigned df)
{
    static const double table[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= std::size(table))
        return table[df - 1];
    return 1.96;
}

void
writeAggJson(std::ostream &os, const std::string &name, const Agg &a,
             int decimals)
{
    os << "\"" << name << "\":{\"n\":" << a.n << ",\"mean\":"
       << fmt(a.mean(), decimals) << ",\"ci95\":"
       << fmt(a.ci95(), decimals) << ",\"min\":" << fmt(a.mn, decimals)
       << ",\"max\":" << fmt(a.mx, decimals) << "}";
}

/** Percentile summary of a merged sync-wait histogram. */
void
writeHistJson(std::ostream &os, const obs::LogHistogram &h)
{
    os << "{\"count\":" << h.count() << ",\"mean\":" << fmt(h.mean(), 3)
       << ",\"p50\":" << h.p50() << ",\"p90\":" << h.p90()
       << ",\"p99\":" << h.p99() << ",\"p999\":" << h.p999()
       << ",\"max\":" << h.max() << "}";
}

/** The fixed outcome emission order (determinism). */
constexpr JobOutcome outcomeOrder[] = {
    JobOutcome::Finished, JobOutcome::Deadlock, JobOutcome::TickLimit,
    JobOutcome::Error,    JobOutcome::Crash,    JobOutcome::Timeout,
    JobOutcome::SpawnError, JobOutcome::Missing,
};

} // namespace

double
Agg::ci95() const
{
    if (n < 2)
        return 0.0;
    const double m = mean();
    double var = 0.0;
    for (double v : values)
        var += (v - m) * (v - m);
    var /= n - 1;
    return tCrit95(n - 1) * std::sqrt(var / n);
}

CampaignReport::CampaignReport(const CampaignSpec &spec,
                               const std::vector<JobRecord> &records)
    : spec(spec), records(records)
{
    // Cells in grid order (preset x app x cores x arrival rate x
    // retry policy x tenant mix), matching CampaignSpec::expand()'s
    // axis order.
    const std::vector<double> rates =
        spec.server.arrivalRates.empty()
            ? std::vector<double>{0.0}
            : spec.server.arrivalRates;
    const std::vector<std::string> policies =
        spec.server.retryPolicies.empty()
            ? std::vector<std::string>{""}
            : spec.server.retryPolicies;
    const std::vector<std::string> mixes =
        spec.server.tenantMixes.empty()
            ? std::vector<std::string>{""}
            : spec.server.tenantMixes;
    for (const PresetSpec &p : spec.presets) {
        for (const std::string &a : spec.apps) {
            for (unsigned c : spec.cores) {
                for (double rate : rates) {
                    for (const std::string &pol : policies) {
                        for (const std::string &mix : mixes) {
                            Cell cell;
                            cell.preset = p.name;
                            cell.app = a;
                            cell.cores = c;
                            cell.arrivalRate = rate;
                            cell.retryPolicy = pol;
                            cell.tenantMix = mix;
                            index[cellKey(p.name, a, c, rate, pol,
                                          mix)] = _cells.size();
                            _cells.push_back(std::move(cell));
                        }
                    }
                }
            }
        }
    }

    for (const JobRecord &r : records) {
        auto it = index.find(cellKey(r.job.preset.name, r.job.app,
                                     r.job.cores, r.job.arrivalRate,
                                     r.job.retryPolicy, r.job.tenantMix));
        if (it == index.end())
            continue; // not part of this spec's grid
        Cell &cell = _cells[it->second];
        ++cell.jobs;
        ++cell.outcomes[jobOutcomeName(r.outcome)];
        cell.recs.push_back(&r);
        if (r.outcome != JobOutcome::Finished)
            continue;
        cell.makespan.add(static_cast<double>(r.makespan));
        cell.hwCoverage.add(r.hwCoverage);
        cell.syncWait.merge(r.syncWait);
        if (r.hasPressure) {
            cell.overflowEvents.add(
                static_cast<double>(r.overflowEvents));
            cell.omuEpisodes.add(static_cast<double>(r.omuEpisodes));
            cell.omuEpisodeTicks.add(
                static_cast<double>(r.omuEpisodeTicks));
            cell.omuHighWater.add(static_cast<double>(r.omuHighWater));
            cell.maxSliceOccupancy.add(r.maxSliceOccupancy);
            cell.maxNiQueueDepth.add(r.maxNiQueueDepth);
        }
        if (r.hasServer) {
            ++cell.srvJobs;
            cell.srvKnee += r.srvKnee;
            cell.srvThroughput.add(r.srvThroughput);
            cell.srvRejected.add(static_cast<double>(r.srvRejected));
            cell.srvStranded.add(static_cast<double>(r.srvStranded));
            cell.srvLatency.merge(r.srvLatency);
            cell.srvGoodput.add(r.srvGoodput);
            cell.srvRejectedSlo.add(
                static_cast<double>(r.srvRejectedSlo));
            cell.srvRetries.add(static_cast<double>(r.srvRetries));
            if (!r.srvTenants.empty())
                ++cell.srvTenantJobs;
            for (const JobRecord::TenantRecord &t : r.srvTenants) {
                if (t.name == "hi") {
                    cell.srvHiGoodput.add(t.goodput);
                    cell.srvHiRejected.add(
                        static_cast<double>(t.rejected));
                    cell.srvHiLatency.merge(t.latency);
                } else if (t.name == "lo") {
                    cell.srvLoGoodput.add(t.goodput);
                    cell.srvLoRejected.add(
                        static_cast<double>(t.rejected));
                    cell.srvLoLatency.merge(t.latency);
                }
            }
        }
        for (const std::string &s : spec.stats) {
            auto cv = r.counters.find(s);
            cell.counters[s].add(
                cv == r.counters.end()
                    ? 0.0
                    : static_cast<double>(cv->second));
        }
    }

    // Speedups need every cell populated first.
    if (!spec.baseline.empty()) {
        for (Cell &cell : _cells) {
            if (cell.preset == spec.baseline)
                continue;
            for (const JobRecord *r : cell.recs) {
                if (r->outcome != JobOutcome::Finished || !r->makespan)
                    continue;
                const JobRecord *b =
                    match(spec.baseline, cell.app, cell.cores,
                          cell.arrivalRate, cell.retryPolicy,
                          cell.tenantMix, r->job.seed, r->job.rep);
                if (b && b->outcome == JobOutcome::Finished &&
                    b->makespan)
                    cell.speedup.add(static_cast<double>(b->makespan) /
                                     static_cast<double>(r->makespan));
            }
        }
    }
}

const Cell *
CampaignReport::cell(const std::string &preset, const std::string &app,
                     unsigned cores, double arrivalRate,
                     const std::string &retryPolicy,
                     const std::string &tenantMix) const
{
    auto it = index.find(
        cellKey(preset, app, cores, arrivalRate, retryPolicy, tenantMix));
    return it == index.end() ? nullptr : &_cells[it->second];
}

const JobRecord *
CampaignReport::match(const std::string &preset, const std::string &app,
                      unsigned cores, double arrivalRate,
                      const std::string &retryPolicy,
                      const std::string &tenantMix, std::uint64_t seed,
                      unsigned rep) const
{
    const Cell *c =
        cell(preset, app, cores, arrivalRate, retryPolicy, tenantMix);
    if (!c)
        return nullptr;
    for (const JobRecord *r : c->recs)
        if (r->job.seed == seed && r->job.rep == rep)
            return r;
    return nullptr;
}

std::vector<double>
CampaignReport::speedups(const std::string &preset, const std::string &app,
                         unsigned cores, double arrivalRate,
                         const std::string &retryPolicy,
                         const std::string &tenantMix) const
{
    std::vector<double> out;
    if (spec.baseline.empty())
        return out;
    const Cell *c =
        cell(preset, app, cores, arrivalRate, retryPolicy, tenantMix);
    if (!c)
        return out;
    for (const JobRecord *r : c->recs) {
        if (r->outcome != JobOutcome::Finished || !r->makespan)
            continue;
        const JobRecord *b = match(spec.baseline, app, cores,
                                   arrivalRate, retryPolicy, tenantMix,
                                   r->job.seed, r->job.rep);
        if (b && b->outcome == JobOutcome::Finished && b->makespan)
            out.push_back(static_cast<double>(b->makespan) /
                          static_cast<double>(r->makespan));
    }
    return out;
}

unsigned
CampaignReport::outcomeCount(JobOutcome o) const
{
    unsigned n = 0;
    for (const JobRecord &r : records)
        n += r.outcome == o;
    return n;
}

std::vector<const JobRecord *>
CampaignReport::failures() const
{
    std::vector<const JobRecord *> out;
    for (const JobRecord &r : records)
        if (r.outcome != JobOutcome::Finished)
            out.push_back(&r);
    return out;
}

void
CampaignReport::writeJson(std::ostream &os) const
{
    os << "{\"schemaVersion\":4,\"campaign\":\"" << jsonEscape(spec.name)
       << "\",\"jobs\":" << records.size();

    os << ",\"outcomes\":{";
    for (std::size_t i = 0; i < std::size(outcomeOrder); ++i)
        os << (i ? "," : "") << "\"" << jobOutcomeName(outcomeOrder[i])
           << "\":" << outcomeCount(outcomeOrder[i]);
    os << "}";

    os << ",\"cells\":[";
    bool firstCell = true;
    for (const Cell &c : _cells) {
        os << (firstCell ? "" : ",");
        firstCell = false;
        os << "{\"preset\":\"" << jsonEscape(c.preset) << "\",\"app\":\""
           << jsonEscape(c.app) << "\",\"cores\":" << c.cores;
        if (c.arrivalRate > 0)
            os << ",\"arrivalRate\":" << formatRate(c.arrivalRate);
        if (!c.retryPolicy.empty())
            os << ",\"retryPolicy\":\"" << jsonEscape(c.retryPolicy)
               << "\"";
        if (!c.tenantMix.empty())
            os << ",\"tenantMix\":\"" << jsonEscape(c.tenantMix) << "\"";
        os << ",\"jobs\":" << c.jobs << ",\"outcomes\":{";
        bool first = true;
        for (JobOutcome o : outcomeOrder) {
            auto it = c.outcomes.find(jobOutcomeName(o));
            if (it == c.outcomes.end())
                continue;
            os << (first ? "" : ",") << "\"" << it->first
               << "\":" << it->second;
            first = false;
        }
        os << "},";
        writeAggJson(os, "makespan", c.makespan, 3);
        os << ",";
        writeAggJson(os, "hwCoverage", c.hwCoverage, 6);
        if (!spec.baseline.empty() && c.preset != spec.baseline) {
            os << ",";
            writeAggJson(os, "speedup", c.speedup, 6);
        }
        if (!spec.stats.empty()) {
            os << ",\"stats\":{";
            bool fs = true;
            for (const std::string &s : spec.stats) {
                auto it = c.counters.find(s);
                static const Agg empty;
                os << (fs ? "" : ",");
                writeAggJson(os, jsonEscape(s),
                             it == c.counters.end() ? empty : it->second,
                             3);
                fs = false;
            }
            os << "}";
        }
        if (!c.syncWait.empty()) {
            os << ",\"syncWait\":";
            writeHistJson(os, c.syncWait);
        }
        if (c.overflowEvents.n) {
            os << ",\"pressure\":{\"jobs\":" << c.overflowEvents.n << ",";
            writeAggJson(os, "overflowEvents", c.overflowEvents, 3);
            os << ",";
            writeAggJson(os, "omuEpisodes", c.omuEpisodes, 3);
            os << ",";
            writeAggJson(os, "omuEpisodeTicks", c.omuEpisodeTicks, 3);
            os << ",";
            writeAggJson(os, "omuHighWater", c.omuHighWater, 3);
            os << ",";
            writeAggJson(os, "maxSliceOccupancy", c.maxSliceOccupancy, 3);
            os << ",";
            writeAggJson(os, "maxNiQueueDepth", c.maxNiQueueDepth, 3);
            os << "}";
        }
        if (c.srvJobs) {
            os << ",\"server\":{\"jobs\":" << c.srvJobs << ",";
            writeAggJson(os, "throughput", c.srvThroughput, 6);
            os << ",";
            writeAggJson(os, "goodput", c.srvGoodput, 6);
            os << ",";
            writeAggJson(os, "rejected", c.srvRejected, 3);
            os << ",";
            writeAggJson(os, "rejectedSlo", c.srvRejectedSlo, 3);
            os << ",";
            writeAggJson(os, "retries", c.srvRetries, 3);
            os << ",";
            writeAggJson(os, "stranded", c.srvStranded, 3);
            os << ",\"knee\":" << c.srvKnee << ",\"latency\":";
            writeHistJson(os, c.srvLatency);
            if (c.srvTenantJobs) {
                os << ",\"tenants\":{\"jobs\":" << c.srvTenantJobs
                   << ",\"hi\":{";
                writeAggJson(os, "goodput", c.srvHiGoodput, 6);
                os << ",";
                writeAggJson(os, "rejected", c.srvHiRejected, 3);
                os << ",\"latency\":";
                writeHistJson(os, c.srvHiLatency);
                os << "},\"lo\":{";
                writeAggJson(os, "goodput", c.srvLoGoodput, 6);
                os << ",";
                writeAggJson(os, "rejected", c.srvLoRejected, 3);
                os << ",\"latency\":";
                writeHistJson(os, c.srvLoLatency);
                os << "}}";
            }
            os << "}";
        }
        os << "}";
    }
    os << "]";

    os << ",\"failures\":[";
    bool firstFail = true;
    for (const JobRecord *r : failures()) {
        os << (firstFail ? "" : ",");
        firstFail = false;
        os << "{\"job\":" << r->job.id << ",\"key\":\""
           << jsonEscape(r->job.key()) << "\",\"outcome\":\""
           << jobOutcomeName(r->outcome) << "\",\"log\":\""
           << jsonEscape(r->note) << "\"}";
    }
    os << "]}\n";
}

void
CampaignReport::writeCsv(std::ostream &os) const
{
    os << "preset,app,cores,arrivalRate,retryPolicy,tenantMix,jobs";
    for (JobOutcome o : outcomeOrder)
        os << "," << jobOutcomeName(o);
    os << ",makespan_mean,makespan_ci95,makespan_min,makespan_max"
          ",hwCoverage_mean,hwCoverage_ci95";
    if (!spec.baseline.empty())
        os << ",speedup_mean,speedup_ci95,speedup_min,speedup_max";
    for (const std::string &s : spec.stats)
        os << "," << s << "_mean," << s << "_ci95," << s << "_min,"
           << s << "_max";
    os << ",syncWait_count,syncWait_mean,syncWait_p50,syncWait_p90"
          ",syncWait_p99,syncWait_p999,syncWait_max";
    os << ",pressure_jobs,overflowEvents_mean,omuEpisodes_mean"
          ",omuEpisodeTicks_mean,omuHighWater_max"
          ",maxSliceOccupancy_max,maxNiQueueDepth_max";
    os << ",server_jobs,throughput_mean,throughput_ci95,rejected_mean"
          ",stranded_mean,reqLatency_p50,reqLatency_p99"
          ",reqLatency_p999,knee_jobs";
    os << ",goodput_mean,goodput_ci95,rejectedSlo_mean,retries_mean"
          ",hi_goodput_mean,hi_rejected_mean,hi_p99"
          ",lo_goodput_mean,lo_rejected_mean,lo_p99";
    os << "\n";

    for (const Cell &c : _cells) {
        os << c.preset << "," << c.app << "," << c.cores << ","
           << formatRate(c.arrivalRate) << "," << c.retryPolicy << ","
           << c.tenantMix << "," << c.jobs;
        for (JobOutcome o : outcomeOrder) {
            auto it = c.outcomes.find(jobOutcomeName(o));
            os << "," << (it == c.outcomes.end() ? 0u : it->second);
        }
        os << "," << fmt(c.makespan.mean(), 3) << ","
           << fmt(c.makespan.ci95(), 3) << "," << fmt(c.makespan.mn, 3)
           << "," << fmt(c.makespan.mx, 3) << ","
           << fmt(c.hwCoverage.mean(), 6) << ","
           << fmt(c.hwCoverage.ci95(), 6);
        if (!spec.baseline.empty()) {
            os << "," << fmt(c.speedup.mean(), 6) << ","
               << fmt(c.speedup.ci95(), 6) << ","
               << fmt(c.speedup.mn, 6) << "," << fmt(c.speedup.mx, 6);
        }
        for (const std::string &s : spec.stats) {
            auto it = c.counters.find(s);
            static const Agg empty;
            const Agg &a = it == c.counters.end() ? empty : it->second;
            os << "," << fmt(a.mean(), 3) << "," << fmt(a.ci95(), 3)
               << "," << fmt(a.mn, 3) << "," << fmt(a.mx, 3);
        }
        os << "," << c.syncWait.count() << ","
           << fmt(c.syncWait.mean(), 3) << "," << c.syncWait.p50()
           << "," << c.syncWait.p90() << "," << c.syncWait.p99() << ","
           << c.syncWait.p999() << "," << c.syncWait.max();
        os << "," << c.overflowEvents.n << ","
           << fmt(c.overflowEvents.mean(), 3) << ","
           << fmt(c.omuEpisodes.mean(), 3) << ","
           << fmt(c.omuEpisodeTicks.mean(), 3) << ","
           << fmt(c.omuHighWater.mx, 3) << ","
           << fmt(c.maxSliceOccupancy.mx, 3) << ","
           << fmt(c.maxNiQueueDepth.mx, 3);
        os << "," << c.srvJobs << "," << fmt(c.srvThroughput.mean(), 6)
           << "," << fmt(c.srvThroughput.ci95(), 6) << ","
           << fmt(c.srvRejected.mean(), 3) << ","
           << fmt(c.srvStranded.mean(), 3) << "," << c.srvLatency.p50()
           << "," << c.srvLatency.p99() << "," << c.srvLatency.p999()
           << "," << c.srvKnee;
        os << "," << fmt(c.srvGoodput.mean(), 6) << ","
           << fmt(c.srvGoodput.ci95(), 6) << ","
           << fmt(c.srvRejectedSlo.mean(), 3) << ","
           << fmt(c.srvRetries.mean(), 3) << ","
           << fmt(c.srvHiGoodput.mean(), 6) << ","
           << fmt(c.srvHiRejected.mean(), 3) << ","
           << c.srvHiLatency.p99() << ","
           << fmt(c.srvLoGoodput.mean(), 6) << ","
           << fmt(c.srvLoRejected.mean(), 3) << ","
           << c.srvLoLatency.p99();
        os << "\n";
    }
}

void
CampaignReport::writeTable(std::ostream &os) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-20s %-14s %5s %4s %12s %11s %8s %9s %9s\n",
                  "Preset", "App", "Cores", "ok", "Makespan", "+-95%",
                  "HwCov", "Speedup", "p99Wait");
    os << line;
    for (const Cell &c : _cells) {
        auto fin = c.outcomes.find("finished");
        unsigned ok = fin == c.outcomes.end() ? 0 : fin->second;
        std::string sp = "-";
        if (!spec.baseline.empty() && c.preset != spec.baseline &&
            c.speedup.n)
            sp = fmt(c.speedup.mean(), 2);
        std::string wait = "-";
        if (!c.syncWait.empty())
            wait = std::to_string(c.syncWait.p99());
        std::snprintf(line, sizeof(line),
                      "%-20s %-14s %5u %2u/%-2u %12.0f %11.0f %7.1f%% "
                      "%9s %9s\n",
                      c.preset.c_str(), c.app.c_str(), c.cores, ok,
                      c.jobs, c.makespan.mean(), c.makespan.ci95(),
                      100.0 * c.hwCoverage.mean(), sp.c_str(),
                      wait.c_str());
        os << line;
    }

    bool anyServer = false;
    for (const Cell &c : _cells)
        anyServer |= c.srvJobs != 0;
    if (anyServer) {
        std::snprintf(line, sizeof(line),
                      "\n%-20s %-14s %6s %-8s %10s %10s %8s %8s %8s "
                      "%6s %5s\n",
                      "Preset", "App", "Rate", "Policy", "Thruput",
                      "Goodput", "p50", "p99", "p999", "Rej", "Knee");
        os << line;
        for (const Cell &c : _cells) {
            if (!c.srvJobs)
                continue;
            std::snprintf(
                line, sizeof(line),
                "%-20s %-14s %6s %-8s %10.4f %10.4f %8llu %8llu %8llu "
                "%6.0f %2u/%-2u\n",
                c.preset.c_str(), c.app.c_str(),
                c.arrivalRate > 0 ? formatRate(c.arrivalRate).c_str()
                                  : "-",
                c.retryPolicy.empty() ? "-" : c.retryPolicy.c_str(),
                c.srvThroughput.mean(), c.srvGoodput.mean(),
                static_cast<unsigned long long>(c.srvLatency.p50()),
                static_cast<unsigned long long>(c.srvLatency.p99()),
                static_cast<unsigned long long>(c.srvLatency.p999()),
                c.srvRejected.mean(), c.srvKnee, c.srvJobs);
            os << line;
        }
    }

    bool anyTenants = false;
    for (const Cell &c : _cells)
        anyTenants |= c.srvTenantJobs != 0;
    if (anyTenants) {
        std::snprintf(line, sizeof(line),
                      "\n%-20s %-14s %8s %-6s %10s %8s %6s\n", "Preset",
                      "App", "Mix", "Tenant", "Goodput", "p99", "Rej");
        os << line;
        for (const Cell &c : _cells) {
            if (!c.srvTenantJobs)
                continue;
            const char *mix =
                c.tenantMix.empty() ? "-" : c.tenantMix.c_str();
            std::snprintf(
                line, sizeof(line),
                "%-20s %-14s %8s %-6s %10.4f %8llu %6.0f\n",
                c.preset.c_str(), c.app.c_str(), mix, "hi",
                c.srvHiGoodput.mean(),
                static_cast<unsigned long long>(c.srvHiLatency.p99()),
                c.srvHiRejected.mean());
            os << line;
            std::snprintf(
                line, sizeof(line),
                "%-20s %-14s %8s %-6s %10.4f %8llu %6.0f\n",
                c.preset.c_str(), c.app.c_str(), mix, "lo",
                c.srvLoGoodput.mean(),
                static_cast<unsigned long long>(c.srvLoLatency.p99()),
                c.srvLoRejected.mean());
            os << line;
        }
    }

    auto fails = failures();
    if (!fails.empty()) {
        os << "\nfailed jobs:\n";
        for (const JobRecord *r : fails) {
            os << "  #" << r->job.id << " " << r->job.key() << " -> "
               << jobOutcomeName(r->outcome) << "\n";
            if (!r->note.empty()) {
                std::istringstream is(r->note);
                std::string l;
                while (std::getline(is, l))
                    os << "    | " << l << "\n";
            }
        }
    }
}

} // namespace orch
} // namespace misar
