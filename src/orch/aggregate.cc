#include "orch/aggregate.hh"

#include <cstdio>
#include <sstream>

#include "sim/trace.hh" // jsonEscape

namespace misar {
namespace orch {

namespace {

std::string
cellKey(const std::string &preset, const std::string &app, unsigned cores)
{
    return preset + "|" + app + "|" + std::to_string(cores);
}

/** Fixed-width decimal formatting (deterministic report bytes). */
std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

void
writeAggJson(std::ostream &os, const char *name, const Agg &a,
             int decimals)
{
    os << "\"" << name << "\":{\"n\":" << a.n << ",\"mean\":"
       << fmt(a.mean(), decimals) << ",\"min\":" << fmt(a.mn, decimals)
       << ",\"max\":" << fmt(a.mx, decimals) << "}";
}

/** The fixed outcome emission order (determinism). */
constexpr JobOutcome outcomeOrder[] = {
    JobOutcome::Finished, JobOutcome::Deadlock, JobOutcome::TickLimit,
    JobOutcome::Error,    JobOutcome::Crash,    JobOutcome::Timeout,
    JobOutcome::SpawnError, JobOutcome::Missing,
};

} // namespace

CampaignReport::CampaignReport(const CampaignSpec &spec,
                               const std::vector<JobRecord> &records)
    : spec(spec), records(records)
{
    // Cells in grid order (preset x app x cores).
    for (const PresetSpec &p : spec.presets) {
        for (const std::string &a : spec.apps) {
            for (unsigned c : spec.cores) {
                Cell cell;
                cell.preset = p.name;
                cell.app = a;
                cell.cores = c;
                index[cellKey(p.name, a, c)] = _cells.size();
                _cells.push_back(std::move(cell));
            }
        }
    }

    for (const JobRecord &r : records) {
        auto it = index.find(
            cellKey(r.job.preset.name, r.job.app, r.job.cores));
        if (it == index.end())
            continue; // not part of this spec's grid
        Cell &cell = _cells[it->second];
        ++cell.jobs;
        ++cell.outcomes[jobOutcomeName(r.outcome)];
        cell.recs.push_back(&r);
        if (r.outcome != JobOutcome::Finished)
            continue;
        cell.makespan.add(static_cast<double>(r.makespan));
        cell.hwCoverage.add(r.hwCoverage);
        for (const std::string &s : spec.stats) {
            auto cv = r.counters.find(s);
            cell.counters[s].add(
                cv == r.counters.end()
                    ? 0.0
                    : static_cast<double>(cv->second));
        }
    }

    // Speedups need every cell populated first.
    if (!spec.baseline.empty()) {
        for (Cell &cell : _cells) {
            if (cell.preset == spec.baseline)
                continue;
            for (const JobRecord *r : cell.recs) {
                if (r->outcome != JobOutcome::Finished || !r->makespan)
                    continue;
                const JobRecord *b =
                    match(spec.baseline, cell.app, cell.cores,
                          r->job.seed, r->job.rep);
                if (b && b->outcome == JobOutcome::Finished &&
                    b->makespan)
                    cell.speedup.add(static_cast<double>(b->makespan) /
                                     static_cast<double>(r->makespan));
            }
        }
    }
}

const Cell *
CampaignReport::cell(const std::string &preset, const std::string &app,
                     unsigned cores) const
{
    auto it = index.find(cellKey(preset, app, cores));
    return it == index.end() ? nullptr : &_cells[it->second];
}

const JobRecord *
CampaignReport::match(const std::string &preset, const std::string &app,
                      unsigned cores, std::uint64_t seed,
                      unsigned rep) const
{
    const Cell *c = cell(preset, app, cores);
    if (!c)
        return nullptr;
    for (const JobRecord *r : c->recs)
        if (r->job.seed == seed && r->job.rep == rep)
            return r;
    return nullptr;
}

std::vector<double>
CampaignReport::speedups(const std::string &preset, const std::string &app,
                         unsigned cores) const
{
    std::vector<double> out;
    if (spec.baseline.empty())
        return out;
    const Cell *c = cell(preset, app, cores);
    if (!c)
        return out;
    for (const JobRecord *r : c->recs) {
        if (r->outcome != JobOutcome::Finished || !r->makespan)
            continue;
        const JobRecord *b =
            match(spec.baseline, app, cores, r->job.seed, r->job.rep);
        if (b && b->outcome == JobOutcome::Finished && b->makespan)
            out.push_back(static_cast<double>(b->makespan) /
                          static_cast<double>(r->makespan));
    }
    return out;
}

unsigned
CampaignReport::outcomeCount(JobOutcome o) const
{
    unsigned n = 0;
    for (const JobRecord &r : records)
        n += r.outcome == o;
    return n;
}

std::vector<const JobRecord *>
CampaignReport::failures() const
{
    std::vector<const JobRecord *> out;
    for (const JobRecord &r : records)
        if (r.outcome != JobOutcome::Finished)
            out.push_back(&r);
    return out;
}

void
CampaignReport::writeJson(std::ostream &os) const
{
    os << "{\"schemaVersion\":1,\"campaign\":\"" << jsonEscape(spec.name)
       << "\",\"jobs\":" << records.size();

    os << ",\"outcomes\":{";
    for (std::size_t i = 0; i < std::size(outcomeOrder); ++i)
        os << (i ? "," : "") << "\"" << jobOutcomeName(outcomeOrder[i])
           << "\":" << outcomeCount(outcomeOrder[i]);
    os << "}";

    os << ",\"cells\":[";
    bool firstCell = true;
    for (const Cell &c : _cells) {
        os << (firstCell ? "" : ",");
        firstCell = false;
        os << "{\"preset\":\"" << jsonEscape(c.preset) << "\",\"app\":\""
           << jsonEscape(c.app) << "\",\"cores\":" << c.cores
           << ",\"jobs\":" << c.jobs << ",\"outcomes\":{";
        bool first = true;
        for (JobOutcome o : outcomeOrder) {
            auto it = c.outcomes.find(jobOutcomeName(o));
            if (it == c.outcomes.end())
                continue;
            os << (first ? "" : ",") << "\"" << it->first
               << "\":" << it->second;
            first = false;
        }
        os << "},";
        writeAggJson(os, "makespan", c.makespan, 3);
        os << ",";
        writeAggJson(os, "hwCoverage", c.hwCoverage, 6);
        if (!spec.baseline.empty() && c.preset != spec.baseline) {
            os << ",";
            writeAggJson(os, "speedup", c.speedup, 6);
        }
        if (!spec.stats.empty()) {
            os << ",\"stats\":{";
            bool fs = true;
            for (const std::string &s : spec.stats) {
                auto it = c.counters.find(s);
                static const Agg empty;
                os << (fs ? "" : ",") << "\"" << jsonEscape(s) << "\":{";
                const Agg &a =
                    it == c.counters.end() ? empty : it->second;
                os << "\"n\":" << a.n << ",\"mean\":" << fmt(a.mean(), 3)
                   << ",\"min\":" << fmt(a.mn, 3)
                   << ",\"max\":" << fmt(a.mx, 3) << "}";
                fs = false;
            }
            os << "}";
        }
        os << "}";
    }
    os << "]";

    os << ",\"failures\":[";
    bool firstFail = true;
    for (const JobRecord *r : failures()) {
        os << (firstFail ? "" : ",");
        firstFail = false;
        os << "{\"job\":" << r->job.id << ",\"key\":\""
           << jsonEscape(r->job.key()) << "\",\"outcome\":\""
           << jobOutcomeName(r->outcome) << "\",\"log\":\""
           << jsonEscape(r->note) << "\"}";
    }
    os << "]}\n";
}

void
CampaignReport::writeCsv(std::ostream &os) const
{
    os << "preset,app,cores,jobs";
    for (JobOutcome o : outcomeOrder)
        os << "," << jobOutcomeName(o);
    os << ",makespan_mean,makespan_min,makespan_max,hwCoverage_mean";
    if (!spec.baseline.empty())
        os << ",speedup_mean,speedup_min,speedup_max";
    for (const std::string &s : spec.stats)
        os << "," << s << "_mean," << s << "_min," << s << "_max";
    os << "\n";

    for (const Cell &c : _cells) {
        os << c.preset << "," << c.app << "," << c.cores << ","
           << c.jobs;
        for (JobOutcome o : outcomeOrder) {
            auto it = c.outcomes.find(jobOutcomeName(o));
            os << "," << (it == c.outcomes.end() ? 0u : it->second);
        }
        os << "," << fmt(c.makespan.mean(), 3) << ","
           << fmt(c.makespan.mn, 3) << "," << fmt(c.makespan.mx, 3)
           << "," << fmt(c.hwCoverage.mean(), 6);
        if (!spec.baseline.empty()) {
            os << "," << fmt(c.speedup.mean(), 6) << ","
               << fmt(c.speedup.mn, 6) << "," << fmt(c.speedup.mx, 6);
        }
        for (const std::string &s : spec.stats) {
            auto it = c.counters.find(s);
            static const Agg empty;
            const Agg &a = it == c.counters.end() ? empty : it->second;
            os << "," << fmt(a.mean(), 3) << "," << fmt(a.mn, 3) << ","
               << fmt(a.mx, 3);
        }
        os << "\n";
    }
}

void
CampaignReport::writeTable(std::ostream &os) const
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-20s %-14s %5s %4s %12s %8s %9s\n", "Preset", "App",
                  "Cores", "ok", "Makespan", "HwCov", "Speedup");
    os << line;
    for (const Cell &c : _cells) {
        auto fin = c.outcomes.find("finished");
        unsigned ok = fin == c.outcomes.end() ? 0 : fin->second;
        std::string sp = "-";
        if (!spec.baseline.empty() && c.preset != spec.baseline &&
            c.speedup.n)
            sp = fmt(c.speedup.mean(), 2);
        std::snprintf(line, sizeof(line),
                      "%-20s %-14s %5u %2u/%-2u %12.0f %7.1f%% %9s\n",
                      c.preset.c_str(), c.app.c_str(), c.cores, ok,
                      c.jobs, c.makespan.mean(),
                      100.0 * c.hwCoverage.mean(), sp.c_str());
        os << line;
    }

    auto fails = failures();
    if (!fails.empty()) {
        os << "\nfailed jobs:\n";
        for (const JobRecord *r : fails) {
            os << "  #" << r->job.id << " " << r->job.key() << " -> "
               << jobOutcomeName(r->outcome) << "\n";
            if (!r->note.empty()) {
                std::istringstream is(r->note);
                std::string l;
                while (std::getline(is, l))
                    os << "    | " << l << "\n";
            }
        }
    }
}

} // namespace orch
} // namespace misar
