/**
 * @file
 * Campaign aggregation: fold per-job records into per-cell
 * statistics and emit the campaign report (JSON + CSV + text table).
 *
 * A cell is one (preset, app, cores) point of the grid; its jobs
 * differ only in seed/repetition. Per cell the aggregator reports
 * outcome counts and mean/min/max over the finished jobs for
 * makespan, hardware coverage, every spec-selected counter, and —
 * when the spec names a baseline preset — the speedup against the
 * baseline job with the same (app, cores, seed, rep).
 *
 * Report output is deliberately deterministic: cells are emitted in
 * grid order, jobs in id order, and numbers with fixed formatting,
 * so two campaigns over the same spec and seeds produce
 * byte-identical reports regardless of worker count, retries, or
 * resume boundaries. Wall-clock and scheduling data stay out of
 * this report (they live in the manifest and the --bench-out file).
 */

#ifndef MISAR_ORCH_AGGREGATE_HH
#define MISAR_ORCH_AGGREGATE_HH

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "orch/job.hh"

namespace misar {
namespace orch {

/** Mean/min/max/CI accumulator. */
struct Agg
{
    unsigned n = 0;
    double sum = 0.0, mn = 0.0, mx = 0.0;
    /** Per-sample values in accumulation (job-id) order, for ci95(). */
    std::vector<double> values;

    void
    add(double v)
    {
        mn = n ? std::min(mn, v) : v;
        mx = n ? std::max(mx, v) : v;
        sum += v;
        ++n;
        values.push_back(v);
    }

    double mean() const { return n ? sum / n : 0.0; }

    /**
     * Half-width of the 95% confidence interval of the mean:
     * t_{0.975,n-1} * s / sqrt(n) with the Student-t critical value
     * (1.96 beyond 30 degrees of freedom). 0 when n < 2.
     */
    double ci95() const;
};

/**
 * One (preset, app, cores) cell's aggregated results. Campaigns with
 * a "server" arrival-rate sweep split cells further by rate, so one
 * (preset, app, cores) pair then owns one cell per offered load.
 */
struct Cell
{
    std::string preset;
    std::string app;
    unsigned cores = 0;
    /** Offered load axis value (0 = no arrival-rate sweep). */
    double arrivalRate = 0.0;
    /** Retry-policy axis value ("" = no retry-policy sweep). */
    std::string retryPolicy;
    /** Tenant-mix axis value ("" = no tenant-mix sweep). */
    std::string tenantMix;
    unsigned jobs = 0; ///< grid jobs in this cell (incl. failed)
    std::map<std::string, unsigned> outcomes;
    Agg makespan, hwCoverage, speedup;
    std::map<std::string, Agg> counters;

    /**
     * Per-rep sync-wait histograms merged bucket-wise: identical to
     * the histogram of the concatenated sample stream, so cell
     * percentiles are exact over all reps, not averages of per-rep
     * percentiles.
     */
    obs::LogHistogram syncWait;

    /** @name Pressure aggregates over jobs that carried a heatmap
     *  summary (n == 0 when none did). @{ */
    Agg overflowEvents, omuEpisodes, omuEpisodeTicks, omuHighWater;
    Agg maxSliceOccupancy, maxNiQueueDepth;
    /** @} */

    /** @name Server aggregates over finished jobs that carried a
     *  report "server" block (srvJobs == 0 when none did). @{ */
    unsigned srvJobs = 0;
    unsigned srvKnee = 0; ///< jobs past the saturation knee
    Agg srvThroughput, srvRejected, srvStranded;
    /** Per-request latencies of every rep merged bucket-wise, so
     *  cell tail percentiles are exact over all reps. */
    obs::LogHistogram srvLatency;
    /** SLO-era aggregates (schema v4 reports; n == 0 on older
     *  records, where goodput falls back to throughput). */
    Agg srvGoodput, srvRejectedSlo, srvRetries;
    /** @} */

    /** @name Per-tenant aggregates over jobs whose report carried a
     *  "tenants" array (srvTenantJobs == 0 when none did). @{ */
    unsigned srvTenantJobs = 0;
    Agg srvHiGoodput, srvLoGoodput;
    Agg srvHiRejected, srvLoRejected;
    obs::LogHistogram srvHiLatency, srvLoLatency;
    /** @} */

    /** This cell's records in (seed, rep) grid order. */
    std::vector<const JobRecord *> recs;
};

class CampaignReport
{
  public:
    /** @p records must be the full grid in job-id order. */
    CampaignReport(const CampaignSpec &spec,
                   const std::vector<JobRecord> &records);

    const std::vector<Cell> &cells() const { return _cells; }

    /** Cell lookup; nullptr when absent from the grid. Pass the
     *  offered load / retry policy / tenant mix to address a cell of
     *  the corresponding server sweep axis. */
    const Cell *cell(const std::string &preset, const std::string &app,
                     unsigned cores, double arrivalRate = 0.0,
                     const std::string &retryPolicy = "",
                     const std::string &tenantMix = "") const;

    /**
     * Per-(seed, rep) speedups of @p preset against the spec's
     * baseline for one (app, cores); empty when no baseline is
     * configured or runs are missing. Order follows the preset's
     * seed list.
     */
    std::vector<double> speedups(const std::string &preset,
                                 const std::string &app, unsigned cores,
                                 double arrivalRate = 0.0,
                                 const std::string &retryPolicy = "",
                                 const std::string &tenantMix = "") const;

    /** Campaign-wide outcome count for @p outcome. */
    unsigned outcomeCount(JobOutcome o) const;

    /** Jobs that ended in any state other than Finished. */
    std::vector<const JobRecord *> failures() const;

    void writeJson(std::ostream &os) const;
    void writeCsv(std::ostream &os) const;
    void writeTable(std::ostream &os) const;

  private:
    const JobRecord *match(const std::string &preset,
                           const std::string &app, unsigned cores,
                           double arrivalRate,
                           const std::string &retryPolicy,
                           const std::string &tenantMix,
                           std::uint64_t seed, unsigned rep) const;

    const CampaignSpec &spec;
    const std::vector<JobRecord> &records;
    std::vector<Cell> _cells;
    std::map<std::string, std::size_t> index; ///< cell key -> _cells
};

} // namespace orch
} // namespace misar

#endif // MISAR_ORCH_AGGREGATE_HH
