/**
 * @file
 * Open-loop request generation: seeded arrival processes and
 * service-time distributions.
 *
 * Everything here is host-side and pure: a RequestSchedule is fully
 * materialized from (spec, seed) before the simulation starts, so the
 * per-request tables are immutable during the run. That keeps the
 * open-loop server deterministic at a fixed seed, identical across
 * `--threads N`, and free of coordinated omission — request latency is
 * always measured from the *scheduled* arrival tick, never from when a
 * dispatcher happened to get around to it.
 */

#ifndef MISAR_SRV_ARRIVAL_HH
#define MISAR_SRV_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace misar {
namespace srv {

/** How requests arrive over simulated time. */
enum class ArrivalMode
{
    Poisson, ///< memoryless arrivals at a fixed mean rate
    Burst,   ///< 2-state MMPP: alternating high/low-rate phases
    Closed,  ///< no arrivals: each worker seeds its own deque once
};

/** Per-request service-time distribution. */
enum class ServiceDist
{
    Fixed,  ///< every request costs exactly the mean
    Exp,    ///< exponential around the mean
    Pareto, ///< heavy tail (alpha = 2), clamped at 50x the mean
};

/** Parse a CLI/spec name ("fixed", "exp", "pareto"). */
bool parseServiceDist(const std::string &name, ServiceDist &out);

const char *serviceDistName(ServiceDist d);

/** Comma-joined list of valid names, for error messages. */
std::string serviceDistNames();

/**
 * Parse a "HI:LO" tenant mix (two positive finite decimal rates in
 * requests per kilotick, separated by exactly one ':'). Shared by the
 * misar_sim CLI, campaign specs, and the in-process engine so every
 * layer accepts exactly the same strings.
 */
bool parseTenantMix(const std::string &text, double &hi, double &lo);

/** Immutable per-request tables, generated before the run. */
struct RequestSchedule
{
    /** Scheduled arrival tick of request i (nondecreasing). */
    std::vector<Tick> arrival;
    /** Service cost of request i in compute cycles (>= 1). */
    std::vector<Tick> service;
    /**
     * Tenant of request i (0 = high priority, 1 = low priority).
     * Empty for single-tenant schedules — every consumer treats an
     * empty table as "all tenant 0".
     */
    std::vector<std::uint8_t> tenant;
};

/**
 * Generate @p requests arrivals at @p rate requests per kilotick.
 *
 * Poisson draws i.i.d. exponential gaps. Burst is a 2-state MMPP
 * (rate x1.8 in the high phase, x0.2 in the low phase, exponential
 * dwell of mean @p burst_dwell ticks per phase) realized by thinning a
 * high-rate Poisson stream, so its long-run mean rate is still @p
 * rate. Closed mode yields an all-zero arrival table.
 */
RequestSchedule makeSchedule(ArrivalMode mode, double rate,
                             ServiceDist dist, Tick service_mean,
                             unsigned requests, Tick burst_dwell,
                             std::uint64_t seed);

/**
 * Two-tenant schedule: the high-priority stream (tenant 0) always
 * arrives Poisson at @p hi_rate; the low-priority stream (tenant 1)
 * arrives at @p lo_rate using @p mode — Burst makes only the low
 * tenant bursty, which is the brownout experiment's shape (steady
 * interactive traffic plus a bursty batch tenant). The two streams
 * are drawn from independent seed-derived RNGs and merged by arrival
 * tick (ties: high priority first); request counts split
 * proportionally to the rates. Service times are drawn from the same
 * independent stream as single-tenant schedules, in merged order.
 */
RequestSchedule makeTenantSchedule(ArrivalMode mode, double hi_rate,
                                   double lo_rate, ServiceDist dist,
                                   Tick service_mean, unsigned requests,
                                   Tick burst_dwell, std::uint64_t seed);

} // namespace srv
} // namespace misar

#endif // MISAR_SRV_ARRIVAL_HH
