#include "srv/arrival.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sim/rng.hh"

namespace misar {
namespace srv {

namespace {

/** Exponential draw with the given mean; never returns 0 or inf. */
double
expo(Rng &rng, double mean)
{
    // uniform() is in [0,1); 1-u is in (0,1], so log() is finite.
    return -mean * std::log(1.0 - rng.uniform());
}

Tick
drawService(Rng &rng, ServiceDist dist, Tick mean)
{
    const double m = static_cast<double>(mean);
    double v = m;
    switch (dist) {
    case ServiceDist::Fixed:
        return mean;
    case ServiceDist::Exp:
        v = expo(rng, m);
        break;
    case ServiceDist::Pareto: {
        // alpha = 2, scale xm = mean/2 so E[x] = xm*alpha/(alpha-1)
        // = mean. Clamp the tail: one astronomically long request
        // would turn every sweep into a makespan lottery.
        const double xm = m / 2.0;
        v = xm / std::sqrt(1.0 - rng.uniform());
        v = std::min(v, 50.0 * m);
        break;
    }
    }
    const Tick t = static_cast<Tick>(std::llround(v));
    return std::max<Tick>(1, t);
}

/**
 * Draw @p requests arrival ticks at @p rate per kilotick from @p rng.
 * Shared by the single- and two-tenant schedule builders; the draw
 * sequence is exactly the historical makeSchedule() one, so existing
 * seeds reproduce byte-identical schedules.
 */
std::vector<Tick>
genArrivals(ArrivalMode mode, double rate, unsigned requests,
            Tick burst_dwell, Rng &rng)
{
    std::vector<Tick> out;
    out.reserve(requests);

    const double mean_gap = 1000.0 / rate; // rate is per kilotick
    if (mode == ArrivalMode::Poisson) {
        double now = 0;
        for (unsigned i = 0; i < requests; ++i) {
            now += expo(rng, mean_gap);
            out.push_back(static_cast<Tick>(std::llround(now)));
        }
        return out;
    }

    // MMPP-2 by thinning: propose at the high rate everywhere, accept
    // low-phase proposals with probability rate_lo/rate_hi. Phase
    // boundaries advance on their own exponential clock.
    const double hi_gap = mean_gap / 1.8;
    const double accept_lo = 0.2 / 1.8;
    const double dwell = static_cast<double>(burst_dwell);
    double now = 0;
    bool high = true;
    double phase_end = expo(rng, dwell);
    while (out.size() < requests) {
        now += expo(rng, hi_gap);
        while (now >= phase_end) {
            high = !high;
            phase_end += expo(rng, dwell);
        }
        if (high || rng.uniform() < accept_lo)
            out.push_back(static_cast<Tick>(std::llround(now)));
    }
    return out;
}

} // namespace

bool
parseServiceDist(const std::string &name, ServiceDist &out)
{
    if (name == "fixed")
        out = ServiceDist::Fixed;
    else if (name == "exp")
        out = ServiceDist::Exp;
    else if (name == "pareto")
        out = ServiceDist::Pareto;
    else
        return false;
    return true;
}

const char *
serviceDistName(ServiceDist d)
{
    switch (d) {
    case ServiceDist::Fixed:
        return "fixed";
    case ServiceDist::Exp:
        return "exp";
    case ServiceDist::Pareto:
        return "pareto";
    }
    return "?";
}

std::string
serviceDistNames()
{
    return "fixed, exp, pareto";
}

bool
parseTenantMix(const std::string &text, double &hi, double &lo)
{
    const std::size_t colon = text.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= text.size())
        return false;
    if (text.find(':', colon + 1) != std::string::npos)
        return false;
    const std::string hi_s = text.substr(0, colon);
    const std::string lo_s = text.substr(colon + 1);
    char *end = nullptr;
    const double h = std::strtod(hi_s.c_str(), &end);
    if (end != hi_s.c_str() + hi_s.size())
        return false;
    const double l = std::strtod(lo_s.c_str(), &end);
    if (end != lo_s.c_str() + lo_s.size())
        return false;
    if (!(h > 0.0) || !(l > 0.0) || !std::isfinite(h) ||
        !std::isfinite(l))
        return false;
    hi = h;
    lo = l;
    return true;
}

RequestSchedule
makeSchedule(ArrivalMode mode, double rate, ServiceDist dist,
             Tick service_mean, unsigned requests, Tick burst_dwell,
             std::uint64_t seed)
{
    RequestSchedule s;
    s.service.reserve(requests);

    // Two independent streams so changing the arrival mode never
    // perturbs the service draws (and vice versa).
    Rng arrivals_rng(seed * 0x9e3779b97f4a7c15ULL + 0x5afe5eedULL);
    Rng service_rng(seed * 0xbf58476d1ce4e5b9ULL + 0x5e91ceULL);

    for (unsigned i = 0; i < requests; ++i)
        s.service.push_back(drawService(service_rng, dist, service_mean));

    if (mode == ArrivalMode::Closed) {
        s.arrival.assign(requests, 0);
        return s;
    }

    s.arrival = genArrivals(mode, rate, requests, burst_dwell,
                            arrivals_rng);
    return s;
}

RequestSchedule
makeTenantSchedule(ArrivalMode mode, double hi_rate, double lo_rate,
                   ServiceDist dist, Tick service_mean,
                   unsigned requests, Tick burst_dwell,
                   std::uint64_t seed)
{
    // Split the request budget proportionally to the offered rates;
    // both tenants always get at least one request so per-tenant
    // stats are never vacuous.
    const double total = hi_rate + lo_rate;
    unsigned n_hi = static_cast<unsigned>(
        std::llround(requests * (hi_rate / total)));
    n_hi = std::min(std::max(n_hi, 1u), requests - 1);
    const unsigned n_lo = requests - n_hi;

    // Independent seed-derived streams per tenant (and the usual
    // separate service stream), so changing one tenant's rate never
    // perturbs the other tenant's arrival draws.
    Rng hi_rng(seed * 0x9e3779b97f4a7c15ULL + 0x5afe5eedULL);
    Rng lo_rng(seed * 0x94d049bb133111ebULL + 0x10a7e2ULL);
    Rng service_rng(seed * 0xbf58476d1ce4e5b9ULL + 0x5e91ceULL);

    // High priority is always steady Poisson traffic; the low tenant
    // inherits the app's arrival mode, so Burst apps model a bursty
    // batch tenant behind steady interactive load.
    const std::vector<Tick> hi =
        genArrivals(ArrivalMode::Poisson, hi_rate, n_hi, burst_dwell,
                    hi_rng);
    const std::vector<Tick> lo =
        genArrivals(mode, lo_rate, n_lo, burst_dwell, lo_rng);

    RequestSchedule s;
    s.arrival.reserve(requests);
    s.service.reserve(requests);
    s.tenant.reserve(requests);

    // Merge by arrival tick; ties admit the high-priority request
    // first. Service times are drawn in merged order.
    std::size_t i = 0, j = 0;
    while (i < hi.size() || j < lo.size()) {
        const bool take_hi =
            i < hi.size() && (j >= lo.size() || hi[i] <= lo[j]);
        if (take_hi) {
            s.arrival.push_back(hi[i++]);
            s.tenant.push_back(0);
        } else {
            s.arrival.push_back(lo[j++]);
            s.tenant.push_back(1);
        }
        s.service.push_back(drawService(service_rng, dist, service_mean));
    }
    return s;
}

} // namespace srv
} // namespace misar
