#include "srv/arrival.hh"

#include <algorithm>
#include <cmath>

#include "sim/rng.hh"

namespace misar {
namespace srv {

namespace {

/** Exponential draw with the given mean; never returns 0 or inf. */
double
expo(Rng &rng, double mean)
{
    // uniform() is in [0,1); 1-u is in (0,1], so log() is finite.
    return -mean * std::log(1.0 - rng.uniform());
}

Tick
drawService(Rng &rng, ServiceDist dist, Tick mean)
{
    const double m = static_cast<double>(mean);
    double v = m;
    switch (dist) {
    case ServiceDist::Fixed:
        return mean;
    case ServiceDist::Exp:
        v = expo(rng, m);
        break;
    case ServiceDist::Pareto: {
        // alpha = 2, scale xm = mean/2 so E[x] = xm*alpha/(alpha-1)
        // = mean. Clamp the tail: one astronomically long request
        // would turn every sweep into a makespan lottery.
        const double xm = m / 2.0;
        v = xm / std::sqrt(1.0 - rng.uniform());
        v = std::min(v, 50.0 * m);
        break;
    }
    }
    const Tick t = static_cast<Tick>(std::llround(v));
    return std::max<Tick>(1, t);
}

} // namespace

bool
parseServiceDist(const std::string &name, ServiceDist &out)
{
    if (name == "fixed")
        out = ServiceDist::Fixed;
    else if (name == "exp")
        out = ServiceDist::Exp;
    else if (name == "pareto")
        out = ServiceDist::Pareto;
    else
        return false;
    return true;
}

const char *
serviceDistName(ServiceDist d)
{
    switch (d) {
    case ServiceDist::Fixed:
        return "fixed";
    case ServiceDist::Exp:
        return "exp";
    case ServiceDist::Pareto:
        return "pareto";
    }
    return "?";
}

std::string
serviceDistNames()
{
    return "fixed, exp, pareto";
}

RequestSchedule
makeSchedule(ArrivalMode mode, double rate, ServiceDist dist,
             Tick service_mean, unsigned requests, Tick burst_dwell,
             std::uint64_t seed)
{
    RequestSchedule s;
    s.arrival.reserve(requests);
    s.service.reserve(requests);

    // Two independent streams so changing the arrival mode never
    // perturbs the service draws (and vice versa).
    Rng arrivals_rng(seed * 0x9e3779b97f4a7c15ULL + 0x5afe5eedULL);
    Rng service_rng(seed * 0xbf58476d1ce4e5b9ULL + 0x5e91ceULL);

    for (unsigned i = 0; i < requests; ++i)
        s.service.push_back(drawService(service_rng, dist, service_mean));

    if (mode == ArrivalMode::Closed) {
        s.arrival.assign(requests, 0);
        return s;
    }

    const double mean_gap = 1000.0 / rate; // rate is per kilotick
    if (mode == ArrivalMode::Poisson) {
        double now = 0;
        for (unsigned i = 0; i < requests; ++i) {
            now += expo(arrivals_rng, mean_gap);
            s.arrival.push_back(static_cast<Tick>(std::llround(now)));
        }
        return s;
    }

    // MMPP-2 by thinning: propose at the high rate everywhere, accept
    // low-phase proposals with probability rate_lo/rate_hi. Phase
    // boundaries advance on their own exponential clock.
    const double hi_gap = mean_gap / 1.8;
    const double accept_lo = 0.2 / 1.8;
    const double dwell = static_cast<double>(burst_dwell);
    double now = 0;
    bool high = true;
    double phase_end = expo(arrivals_rng, dwell);
    while (s.arrival.size() < requests) {
        now += expo(arrivals_rng, hi_gap);
        while (now >= phase_end) {
            high = !high;
            phase_end += expo(arrivals_rng, dwell);
        }
        if (high || arrivals_rng.uniform() < accept_lo)
            s.arrival.push_back(static_cast<Tick>(std::llround(now)));
    }
    return s;
}

} // namespace srv
} // namespace misar
