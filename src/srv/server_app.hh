/**
 * @file
 * The open-loop task server: request generation, dispatch, work
 * stealing, and per-request latency accounting.
 *
 * Topology on an N-thread system (open-loop modes):
 *
 *   cores 0..D-1      dispatchers — sleep until each request's
 *                     scheduled arrival tick, then push it into one of
 *                     the D MPSC dispatch rings (full ring = request
 *                     shed / rejected);
 *   cores D..D+D-1    drainers — each owns one dispatch ring, pulls
 *                     batches into its local deque and serves them;
 *   remaining cores   workers — serve by stealing from drainer deques.
 *
 * D is 2 on systems with >= 8 threads, else 1. Closed mode instead
 * makes every core a worker that seeds its own deque with
 * `tasksPerWorker` tasks and work-steals until everything is done
 * (the taskqueue app).
 *
 * Determinism: all randomness (arrival gaps, service times, steal
 * victim rotation) comes from seed-derived Rng streams generated
 * either before the run or per-core inside the coroutine; cross-core
 * coordination happens only through simulated memory. Host-side
 * recording is per-core slots merged in core order at finalize(), so
 * runs are bit-identical at a fixed seed and stats-identical across
 * `--threads N`.
 */

#ifndef MISAR_SRV_SERVER_APP_HH
#define MISAR_SRV_SERVER_APP_HH

#include <cstdint>
#include <vector>

#include "cpu/thread_api.hh"
#include "srv/arrival.hh"
#include "srv/server_stats.hh"
#include "srv/task_queue.hh"
#include "sync/sync_lib.hh"

namespace misar {
namespace srv {

/** Parameters of one server workload (part of workload::AppSpec). */
struct ServerSpec
{
    /** Off by default: ordinary closed-loop apps ignore this block. */
    bool enabled = false;

    ArrivalMode mode = ArrivalMode::Poisson;

    /** Offered load in requests per kilotick (open-loop modes). */
    double arrivalRate = 2.0;

    ServiceDist serviceDist = ServiceDist::Exp;

    /** Mean request service cost in compute cycles. */
    Tick serviceMean = 300;

    /** Total requests generated per run (open-loop modes). */
    unsigned requests = 1500;

    /** Tasks each worker seeds for itself (closed mode). */
    unsigned tasksPerWorker = 64;

    /** Dispatch-ring capacity: the admission-control bound. */
    std::uint64_t queueCap = 64;

    /** Local-deque capacity (overflow is served inline). */
    std::uint64_t dequeCap = 32;

    /** Mean dwell ticks per MMPP phase (burst mode). */
    Tick burstDwell = 20000;

    // --- Overload control (all inert at their defaults) ------------

    /**
     * Per-request latency SLO in ticks; 0 disables SLO-aware
     * admission. When set, the dispatcher sheds a request at
     * admission if predicted wait (ring depth x per-queue EWMA of
     * observed service intervals) exceeds the SLO, and completions
     * within the SLO count toward goodput.
     */
    Tick sloTicks = 0;

    /** What a shed request's client does next. */
    RetryPolicy retryPolicy = RetryPolicy::None;

    /** First retry backoff in ticks; doubles per attempt. */
    Tick retryBackoffBase = 400;

    /** Backoff ceiling in ticks. */
    Tick retryBackoffCap = 6400;

    /** Maximum retry attempts per request beyond the first try. */
    unsigned retryLimit = 3;

    /**
     * Budgeted policy: the retry bucket holds retryBurst tokens up
     * front plus retryBudgetRatio tokens per completed request, so
     * sustained retry volume is capped at a fraction of successes.
     */
    double retryBudgetRatio = 0.1;
    std::uint64_t retryBurst = 8;

    /**
     * Two-tenant mix in requests per kilotick; both zero (the
     * default) serves a single anonymous tenant. When set, they must
     * sum to arrivalRate, tenant 0 ("hi") arrives Poisson at
     * tenantHiRate, tenant 1 ("lo") uses the app's arrival mode at
     * tenantLoRate.
     */
    double tenantHiRate = 0.0;
    double tenantLoRate = 0.0;

    /**
     * Brownout: fraction of the SLO the *low* tenant's predicted
     * wait may consume before it is shed. 1.0 means no priority
     * (both tenants shed at the full SLO); 0.5 sheds low-priority
     * load at half the headroom, which is what holds the high
     * tenant's p99 through a low-tenant burst.
     */
    double brownoutRatio = 0.5;

    bool tenantsEnabled() const
    {
        return tenantHiRate > 0.0 && tenantLoRate > 0.0;
    }
};

/**
 * Shared state of one server run. Construct once, start `thread(t)`
 * on every core, run the system, then `finalize(makespan)`. The
 * harness must outlive the run (coroutines keep a pointer to it).
 */
class ServerHarness
{
  public:
    ServerHarness(const ServerSpec &spec, unsigned num_threads,
                  std::uint64_t seed);

    /** Thread body for core `t.id()`; role is derived from the id. */
    cpu::ThreadTask thread(cpu::ThreadApi t, sync::SyncLib *lib);

    /** Merge per-core slots (in core order) into the run's stats. */
    ServerStats finalize(Tick makespan) const;

    const ServerSpec &spec() const { return spec_; }

    /** Dispatcher count for an @p num_threads system. */
    static unsigned dispatchers(unsigned num_threads);

  private:
    /** Per-tenant recording slice inside a PerCore slot. */
    struct TenantSlot
    {
        obs::LogHistogram lat;
        std::uint64_t generated = 0;
        std::uint64_t completed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t rejectedSlo = 0;
        std::uint64_t sloMet = 0;
    };

    /** Per-core recording slot; core i touches only slot i. */
    struct PerCore
    {
        obs::LogHistogram lat;
        std::uint64_t generated = 0;
        std::uint64_t completed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t steals = 0;
        std::uint64_t rejectedSlo = 0;
        std::uint64_t retries = 0;
        std::uint64_t retryDenied = 0;
        std::uint64_t sloMet = 0;
        TenantSlot tenant[2]; ///< touched only in multi-tenant runs
    };

    /** One pending client retry inside a dispatcher's timer heap. */
    struct PendingRetry
    {
        Tick due = 0;
        std::uint64_t id = 0;
        unsigned attempt = 0; ///< admission tries already made
    };

    unsigned tenantOf(std::uint64_t id) const
    {
        return sched.tenant.empty() ? 0 : sched.tenant[id];
    }

    /** Which dispatch ring serves request @p id (open loop only). */
    unsigned ringOf(std::uint64_t id) const
    {
        return static_cast<unsigned>((id / numDisp) % queues.size());
    }

    /** EWMA word of ring @p q's observed service interval. */
    Addr ewmaAddr(unsigned q) const
    {
        return ctrlBase + (2 + 2 * q) * srvBlock;
    }
    /** Last-completion tick of ring @p q (EWMA sampling clock). */
    Addr lastDoneAddr(unsigned q) const
    {
        return ctrlBase + (3 + 2 * q) * srvBlock;
    }

    /** Deterministic backoff + jitter before attempt @p attempt + 1. */
    Tick retryDelay(std::uint64_t id, unsigned attempt) const;

    /** Take a retry token; false when the budget is exhausted. */
    cpu::SubTask<bool> claimRetryToken(cpu::ThreadApi t);

    cpu::SubTask<> execRequest(cpu::ThreadApi t, std::uint64_t id);
    cpu::ThreadTask dispatcherThread(cpu::ThreadApi t,
                                     sync::SyncLib *lib);
    cpu::ThreadTask workerThread(cpu::ThreadApi t, sync::SyncLib *lib);
    cpu::ThreadTask closedWorkerThread(cpu::ThreadApi t,
                                       sync::SyncLib *lib);

    ServerSpec spec_;
    unsigned numThreads;
    unsigned numDisp; ///< dispatchers == dispatch rings (0 if closed)
    std::uint64_t seed;
    RequestSchedule sched;

    Addr stopAddr;
    Addr producersDoneAddr;
    /** Base of the overload-control words (EWMAs, retry budget). */
    Addr ctrlBase;
    Addr successesAddr;  ///< completions, feeds the retry budget
    Addr retrySpentAddr; ///< retry tokens claimed so far
    std::vector<DispatchQueue> queues;
    std::vector<LocalDeque> deques; ///< indexed by core id

    std::vector<PerCore> perCore;
};

} // namespace srv
} // namespace misar

#endif // MISAR_SRV_SERVER_APP_HH
