/**
 * @file
 * Shared task-queue primitives for the server subsystem.
 *
 * Two building blocks, both living in *simulated* memory and
 * synchronized through SyncLib locks and condition variables — so the
 * queues themselves exercise the MSA (or the software fallback), and
 * queue hand-off latency shows up in request latency:
 *
 *  - DispatchQueue: a bounded MPSC ring. Producers (dispatchers)
 *    tryPush and get `false` when the ring is full — that is the
 *    admission-control / shed-on-saturate point. One consumer (the
 *    drainer) pops in batches and blocks on a condvar while empty.
 *
 *  - LocalDeque: a bounded per-worker deque. The owner pushes/pops at
 *    the front (FIFO service order, which is what tail latency wants);
 *    thieves steal from the back.
 *
 * Values must be non-zero (store id+1); 0 means "empty". All state —
 * lock words, condvars, indices, slots — is in simulated memory, one
 * cache block apart, so cross-core access is mediated entirely by the
 * simulated memory system and the runs stay identical across
 * `--threads N`.
 */

#ifndef MISAR_SRV_TASK_QUEUE_HH
#define MISAR_SRV_TASK_QUEUE_HH

#include <cstdint>

#include "cpu/thread_api.hh"
#include "sync/sync_lib.hh"

namespace misar {
namespace srv {

/** Simulated-memory block granularity (matches AppLayout usage). */
constexpr Addr srvBlock = 64;

/** Bounded multi-producer single-consumer ring in simulated memory. */
struct DispatchQueue
{
    Addr base = 0;
    std::uint64_t cap = 0;

    Addr lockAddr() const { return base; }
    Addr notEmptyAddr() const { return base + srvBlock; }
    Addr headAddr() const { return base + 2 * srvBlock; }
    Addr tailAddr() const { return base + 3 * srvBlock; }
    Addr slotAddr(std::uint64_t i) const
    {
        return base + (4 + i % cap) * srvBlock;
    }
    /** Bytes of simulated address space one ring occupies. */
    static Addr span(std::uint64_t cap) { return (4 + cap) * srvBlock; }

    /**
     * Append @p value; returns false (shed) when the ring is full.
     * Signals the consumer when the push made the ring non-empty.
     */
    cpu::SubTask<bool> tryPush(cpu::ThreadApi t, sync::SyncLib *lib,
                               std::uint64_t value) const;

    /**
     * Pop up to @p max values into @p out. Blocks on the not-empty
     * condvar while the ring is empty and the word at @p stop_addr
     * still reads 0; returns 0 only when stopped *and* drained.
     */
    cpu::SubTask<unsigned> popBatch(cpu::ThreadApi t, sync::SyncLib *lib,
                                    Addr stop_addr, std::uint64_t *out,
                                    unsigned max) const;

    /** Wake a consumer blocked in popBatch (after raising stop). */
    cpu::SubTask<> wakeAll(cpu::ThreadApi t, sync::SyncLib *lib) const;

    /**
     * Unlocked occupancy probe: reads head and tail without taking
     * the ring lock, so the answer can be momentarily stale — fine
     * for admission heuristics (SLO-aware shedding), wrong for
     * anything that needs an exact count. Staleness is itself
     * deterministic: the reads are ordinary simulated-memory loads.
     */
    cpu::SubTask<std::uint64_t> depth(cpu::ThreadApi t) const;
};

/** Bounded per-worker deque: owner at the front, thieves at the back. */
struct LocalDeque
{
    Addr base = 0;
    std::uint64_t cap = 0;

    Addr lockAddr() const { return base; }
    Addr topAddr() const { return base + srvBlock; }
    Addr botAddr() const { return base + 2 * srvBlock; }
    Addr slotAddr(std::uint64_t i) const
    {
        return base + (3 + i % cap) * srvBlock;
    }
    static Addr span(std::uint64_t cap) { return (3 + cap) * srvBlock; }

    /** Append at the back; false when full (caller runs it inline). */
    cpu::SubTask<bool> pushBack(cpu::ThreadApi t, sync::SyncLib *lib,
                                std::uint64_t value) const;

    /** Owner: take the oldest entry; 0 when empty. */
    cpu::SubTask<std::uint64_t> popFront(cpu::ThreadApi t,
                                         sync::SyncLib *lib) const;

    /** Thief: take the newest entry; 0 when empty. */
    cpu::SubTask<std::uint64_t> stealBack(cpu::ThreadApi t,
                                          sync::SyncLib *lib) const;
};

} // namespace srv
} // namespace misar

#endif // MISAR_SRV_TASK_QUEUE_HH
