#include "srv/server_app.hh"

#include <string>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace misar {
namespace srv {

using cpu::SubTask;
using cpu::ThreadApi;
using cpu::ThreadTask;
using sync::SyncLib;

namespace {

/** Base of the server's simulated address range (above app bases). */
constexpr Addr srvBase = 0x60000000;

/** Requests pulled from a dispatch ring per drainer visit. */
constexpr unsigned drainBatch = 8;

/** Idle worker back-off between steal sweeps, in cycles. */
constexpr Tick idleBackoff = 300;

std::string
corePrefix(CoreId id)
{
    return "core" + std::to_string(id) + ".srv.";
}

} // namespace

unsigned
ServerHarness::dispatchers(unsigned num_threads)
{
    return num_threads >= 8 ? 2 : 1;
}

ServerHarness::ServerHarness(const ServerSpec &spec, unsigned num_threads,
                             std::uint64_t seed)
    : spec_(spec), numThreads(num_threads), numDisp(0), seed(seed)
{
    if (!spec_.enabled)
        fatal("ServerHarness built from a non-server app spec");
    const bool closed = spec_.mode == ArrivalMode::Closed;
    if (!closed) {
        numDisp = dispatchers(num_threads);
        if (num_threads < 2 * numDisp)
            fatal("server apps need at least %u threads, have %u",
                  2 * numDisp, num_threads);
        if (spec_.arrivalRate <= 0)
            fatal("server arrival rate must be positive");
    }

    const unsigned total_requests =
        closed ? num_threads * spec_.tasksPerWorker : spec_.requests;
    sched = makeSchedule(spec_.mode, spec_.arrivalRate, spec_.serviceDist,
                         spec_.serviceMean, total_requests,
                         spec_.burstDwell, seed);

    stopAddr = srvBase;
    producersDoneAddr = srvBase + srvBlock;

    Addr next = srvBase + 0x1000;
    for (unsigned q = 0; q < numDisp; ++q) {
        queues.push_back({next, spec_.queueCap});
        next += DispatchQueue::span(spec_.queueCap);
    }
    next = srvBase + 0x100000;
    for (unsigned c = 0; c < num_threads; ++c) {
        deques.push_back({next, spec_.dequeCap});
        next += LocalDeque::span(spec_.dequeCap);
    }

    perCore.resize(num_threads);
}

ThreadTask
ServerHarness::thread(ThreadApi t, SyncLib *lib)
{
    if (spec_.mode == ArrivalMode::Closed)
        return closedWorkerThread(t, lib);
    if (t.id() < numDisp)
        return dispatcherThread(t, lib);
    return workerThread(t, lib);
}

/** Serve request @p id: burn its service cost, record its latency. */
SubTask<>
ServerHarness::execRequest(ThreadApi t, std::uint64_t id)
{
    co_await t.compute(sched.service[id]);
    PerCore &pc = perCore[t.id()];
    pc.completed += 1;
    t.stats().counter(corePrefix(t.id()) + "completed").inc();
    if (spec_.mode != ArrivalMode::Closed) {
        // Latency from the *scheduled* arrival tick: queueing delay a
        // saturated server inflicts is part of the number (no
        // coordinated omission).
        pc.lat.record(t.now() - sched.arrival[id]);
    }
}

ThreadTask
ServerHarness::dispatcherThread(ThreadApi t, SyncLib *lib)
{
    const CoreId d = t.id();
    PerCore &pc = perCore[d];
    StatRegistry &st = t.stats();
    const std::string prefix = corePrefix(d);

    for (std::uint64_t id = d; id < sched.arrival.size();
         id += numDisp) {
        const Tick due = sched.arrival[id];
        const Tick now = t.now();
        if (due > now)
            co_await t.compute(due - now);
        pc.generated += 1;
        st.counter(prefix + "generated").inc();
        // Round-robin over the rings so each one sees every producer.
        const DispatchQueue &q = queues[(id / numDisp) % queues.size()];
        const bool ok = co_await q.tryPush(t, lib, id + 1);
        if (!ok) {
            pc.rejected += 1;
            st.counter(prefix + "rejected").inc();
        }
    }

    // Last producer out raises the stop flag and wakes the drainers.
    const std::uint64_t before =
        co_await t.fetchAdd(producersDoneAddr, 1);
    if (before + 1 == numDisp) {
        co_await t.write(stopAddr, 1);
        for (const DispatchQueue &q : queues)
            co_await q.wakeAll(t, lib);
    }
}

ThreadTask
ServerHarness::workerThread(ThreadApi t, SyncLib *lib)
{
    const CoreId c = t.id();
    const bool drainer = c < numDisp + queues.size();
    const LocalDeque own = deques[c];
    PerCore &pc = perCore[c];
    StatRegistry &st = t.stats();
    const std::string prefix = corePrefix(c);
    // Steal targets: only drainers ever hold queued work in open-loop
    // mode, so the sweep stays short and the drainer deques hot.
    const unsigned victims = queues.size();
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + c * 0xc2b2ae35ULL + 17);
    std::uint64_t batch[drainBatch];

    for (;;) {
        // 1. Serve everything in our own deque, oldest first.
        for (;;) {
            const std::uint64_t v = co_await own.popFront(t, lib);
            if (!v)
                break;
            co_await execRequest(t, v - 1);
        }

        // 2. Drainers refill from their dispatch ring (blocking while
        //    it is empty and producers are still running).
        if (drainer) {
            const unsigned n = co_await queues[c - numDisp].popBatch(
                t, lib, stopAddr, batch, drainBatch);
            if (n) {
                for (unsigned i = 0; i < n; ++i) {
                    const bool ok =
                        co_await own.pushBack(t, lib, batch[i]);
                    if (!ok)
                        co_await execRequest(t, batch[i] - 1);
                }
                continue;
            }
            // 0 = stop flag up and the ring fully drained.
        }

        // 3. Steal from a drainer deque, rotating the first victim.
        bool got = false;
        const unsigned start = rng.range(victims);
        for (unsigned k = 0; k < victims; ++k) {
            const CoreId victim = numDisp + (start + k) % victims;
            if (victim == c)
                continue;
            const std::uint64_t v =
                co_await deques[victim].stealBack(t, lib);
            if (v) {
                pc.steals += 1;
                st.counter(prefix + "steals").inc();
                co_await execRequest(t, v - 1);
                got = true;
                break;
            }
        }
        if (got)
            continue;

        // 4. Nothing anywhere: exit once the producers are done,
        //    otherwise back off and sweep again.
        const std::uint64_t stop = co_await t.read(stopAddr);
        if (stop)
            co_return;
        co_await t.compute(idleBackoff);
    }
}

ThreadTask
ServerHarness::closedWorkerThread(ThreadApi t, SyncLib *lib)
{
    const CoreId c = t.id();
    const LocalDeque own = deques[c];
    PerCore &pc = perCore[c];
    StatRegistry &st = t.stats();
    const std::string prefix = corePrefix(c);
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + c * 0xc2b2ae35ULL + 17);

    // Task ids this worker is responsible for seeding.
    const std::uint64_t first =
        static_cast<std::uint64_t>(c) * spec_.tasksPerWorker;
    std::uint64_t seeded = 0;

    for (;;) {
        for (;;) {
            const std::uint64_t v = co_await own.popFront(t, lib);
            if (!v)
                break;
            co_await execRequest(t, v - 1);
        }

        // Seed the next wave of our own tasks (bounded by the deque).
        if (seeded < spec_.tasksPerWorker) {
            while (seeded < spec_.tasksPerWorker) {
                const std::uint64_t id = first + seeded;
                const bool ok = co_await own.pushBack(t, lib, id + 1);
                if (!ok)
                    break;
                ++seeded;
                pc.generated += 1;
                st.counter(prefix + "generated").inc();
            }
            continue;
        }

        // All our tasks seeded and our deque is dry: steal anywhere.
        bool got = false;
        const unsigned start = rng.range(numThreads);
        for (unsigned k = 0; k < numThreads; ++k) {
            const CoreId victim = (start + k) % numThreads;
            if (victim == c)
                continue;
            const std::uint64_t v =
                co_await deques[victim].stealBack(t, lib);
            if (v) {
                pc.steals += 1;
                st.counter(prefix + "steals").inc();
                co_await execRequest(t, v - 1);
                got = true;
                break;
            }
        }
        if (!got)
            co_return;
    }
}

ServerStats
ServerHarness::finalize(Tick makespan) const
{
    ServerStats s;
    const bool open = spec_.mode != ArrivalMode::Closed;
    s.offeredRate = open ? spec_.arrivalRate : 0.0;
    // Merge in core order so the result is independent of host
    // scheduling under `--threads N`.
    for (const PerCore &pc : perCore) {
        s.generated += pc.generated;
        s.completed += pc.completed;
        s.rejected += pc.rejected;
        s.steals += pc.steals;
        s.latency.merge(pc.lat);
    }
    const std::uint64_t done = s.completed + s.rejected;
    s.stranded = s.generated > done ? s.generated - done : 0;
    if (makespan > 0)
        s.throughput =
            static_cast<double>(s.completed) * 1000.0 / makespan;
    // Saturation knee: with bounded queues, sustained overload always
    // surfaces as shed (or fault-stranded) requests. Throughput-vs-
    // offered comparisons are noisy at small request counts (the
    // post-arrival drain tail dilutes the rate), so shed fraction >1%
    // is the criterion.
    if (open && s.generated > 0)
        s.knee = (s.rejected + s.stranded) * 100 > s.generated;
    return s;
}

} // namespace srv
} // namespace misar
