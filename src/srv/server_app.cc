#include "srv/server_app.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace misar {
namespace srv {

using cpu::SubTask;
using cpu::ThreadApi;
using cpu::ThreadTask;
using sync::SyncLib;

namespace {

/** Base of the server's simulated address range (above app bases). */
constexpr Addr srvBase = 0x60000000;

/** Requests pulled from a dispatch ring per drainer visit. */
constexpr unsigned drainBatch = 8;

/** Idle worker back-off between steal sweeps, in cycles. */
constexpr Tick idleBackoff = 300;

/** EWMA weight: new = old + (sample - old) / ewmaShift. */
constexpr int ewmaShift = 3;

std::string
corePrefix(CoreId id)
{
    return "core" + std::to_string(id) + ".srv.";
}

/** Why a request was shed at admission this attempt. */
enum class ShedCause
{
    None,
    Full, ///< dispatch ring full — the PR 9 rejection
    Slo,  ///< predicted wait would bust the SLO
};

} // namespace

bool
parseRetryPolicy(const std::string &name, RetryPolicy &out)
{
    if (name == "none")
        out = RetryPolicy::None;
    else if (name == "naive")
        out = RetryPolicy::Naive;
    else if (name == "budgeted")
        out = RetryPolicy::Budgeted;
    else
        return false;
    return true;
}

const char *
retryPolicyName(RetryPolicy p)
{
    switch (p) {
    case RetryPolicy::None:
        return "none";
    case RetryPolicy::Naive:
        return "naive";
    case RetryPolicy::Budgeted:
        return "budgeted";
    }
    return "?";
}

std::string
retryPolicyNames()
{
    return "none, naive, budgeted";
}

unsigned
ServerHarness::dispatchers(unsigned num_threads)
{
    return num_threads >= 8 ? 2 : 1;
}

ServerHarness::ServerHarness(const ServerSpec &spec, unsigned num_threads,
                             std::uint64_t seed)
    : spec_(spec), numThreads(num_threads), numDisp(0), seed(seed)
{
    if (!spec_.enabled)
        fatal("ServerHarness built from a non-server app spec");
    const bool closed = spec_.mode == ArrivalMode::Closed;
    const bool overload = spec_.sloTicks > 0 ||
                          spec_.retryPolicy != RetryPolicy::None ||
                          spec_.tenantsEnabled();
    if (closed && overload)
        fatal("overload controls (slo/retries/tenants) need an "
              "open-loop arrival mode");
    if (!closed) {
        numDisp = dispatchers(num_threads);
        if (num_threads < 2 * numDisp)
            fatal("server apps need at least %u threads, have %u",
                  2 * numDisp, num_threads);
        if (spec_.arrivalRate <= 0)
            fatal("server arrival rate must be positive");
    }
    if ((spec_.tenantHiRate > 0.0) != (spec_.tenantLoRate > 0.0))
        fatal("tenant mix needs both a hi and a lo rate");
    if (spec_.tenantsEnabled()) {
        const double sum = spec_.tenantHiRate + spec_.tenantLoRate;
        if (std::fabs(sum - spec_.arrivalRate) > 1e-9 * sum)
            fatal("tenant mix %g:%g sums to %g, not the arrival "
                  "rate %g",
                  spec_.tenantHiRate, spec_.tenantLoRate, sum,
                  spec_.arrivalRate);
    }
    if (!(spec_.brownoutRatio > 0.0) || spec_.brownoutRatio > 1.0)
        fatal("brownout ratio must be in (0, 1]");
    if (spec_.retryPolicy == RetryPolicy::Budgeted &&
        !(spec_.retryBudgetRatio > 0.0))
        fatal("retry budget ratio must be positive");
    if (spec_.retryPolicy != RetryPolicy::None &&
        (spec_.retryBackoffBase == 0 ||
         spec_.retryBackoffCap < spec_.retryBackoffBase))
        fatal("retry backoff must be positive and cap >= base");

    const unsigned total_requests =
        closed ? num_threads * spec_.tasksPerWorker : spec_.requests;
    if (spec_.tenantsEnabled())
        sched = makeTenantSchedule(spec_.mode, spec_.tenantHiRate,
                                   spec_.tenantLoRate, spec_.serviceDist,
                                   spec_.serviceMean, total_requests,
                                   spec_.burstDwell, seed);
    else
        sched = makeSchedule(spec_.mode, spec_.arrivalRate,
                             spec_.serviceDist, spec_.serviceMean,
                             total_requests, spec_.burstDwell, seed);

    stopAddr = srvBase;
    producersDoneAddr = srvBase + srvBlock;

    // Overload-control words live in their own region between the
    // rings (srvBase + 0x1000) and the deques (srvBase + 0x100000),
    // so arming them never shifts the layout PR 9 runs depend on.
    ctrlBase = srvBase + 0xF0000;
    successesAddr = ctrlBase;
    retrySpentAddr = ctrlBase + srvBlock;

    Addr next = srvBase + 0x1000;
    for (unsigned q = 0; q < numDisp; ++q) {
        queues.push_back({next, spec_.queueCap});
        next += DispatchQueue::span(spec_.queueCap);
    }
    next = srvBase + 0x100000;
    for (unsigned c = 0; c < num_threads; ++c) {
        deques.push_back({next, spec_.dequeCap});
        next += LocalDeque::span(spec_.dequeCap);
    }

    perCore.resize(num_threads);
}

ThreadTask
ServerHarness::thread(ThreadApi t, SyncLib *lib)
{
    if (spec_.mode == ArrivalMode::Closed)
        return closedWorkerThread(t, lib);
    if (t.id() < numDisp)
        return dispatcherThread(t, lib);
    return workerThread(t, lib);
}

Tick
ServerHarness::retryDelay(std::uint64_t id, unsigned attempt) const
{
    // Capped exponential backoff with deterministic jitter: the
    // jitter stream is keyed on (seed, id, attempt) alone, so it is
    // independent of dispatcher interleaving and identical across
    // `--threads N`.
    const unsigned shift = std::min(attempt, 31u);
    const Tick backoff = std::min(spec_.retryBackoffCap,
                                  spec_.retryBackoffBase << shift);
    Rng jitter(seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
               ((attempt + 1) * 0xc2b2ae3d27d4eb4fULL));
    const Tick half = std::max<Tick>(1, backoff / 2);
    return half + jitter.range(half + 1);
}

/**
 * Claim one retry token. The bucket holds retryBurst tokens plus
 * retryBudgetRatio per success so far; claims are a fetchAdd on the
 * spent counter, refunded when the claim overshot the cap. Both words
 * live in simulated memory, so the budget is globally consistent
 * across dispatchers and deterministic.
 */
SubTask<bool>
ServerHarness::claimRetryToken(ThreadApi t)
{
    const std::uint64_t successes = co_await t.read(successesAddr);
    const std::uint64_t cap =
        spec_.retryBurst +
        static_cast<std::uint64_t>(
            static_cast<double>(successes) * spec_.retryBudgetRatio);
    const std::uint64_t before = co_await t.fetchAdd(retrySpentAddr, 1);
    if (before < cap)
        co_return true;
    co_await t.fetchAdd(retrySpentAddr,
                        static_cast<std::uint64_t>(-1));
    co_return false;
}

/** Serve request @p id: burn its service cost, record its latency. */
SubTask<>
ServerHarness::execRequest(ThreadApi t, std::uint64_t id)
{
    co_await t.compute(sched.service[id]);
    PerCore &pc = perCore[t.id()];
    pc.completed += 1;
    t.stats().counter(corePrefix(t.id()) + "completed").inc();
    if (spec_.mode == ArrivalMode::Closed)
        co_return;
    // Latency from the *scheduled* arrival tick: queueing delay a
    // saturated server inflicts is part of the number (no
    // coordinated omission).
    const Tick latency = t.now() - sched.arrival[id];
    pc.lat.record(latency);

    const unsigned ten = tenantOf(id);
    if (spec_.tenantsEnabled()) {
        pc.tenant[ten].completed += 1;
        pc.tenant[ten].lat.record(latency);
    }
    if (spec_.sloTicks > 0) {
        if (latency <= spec_.sloTicks) {
            pc.sloMet += 1;
            if (spec_.tenantsEnabled())
                pc.tenant[ten].sloMet += 1;
        }
        // Feed the admission EWMA with this ring's observed service
        // interval (gap between consecutive completions), which
        // tracks the *effective* per-request cost including dispatch
        // and queue hand-off — a raw burn-cycles EWMA would
        // systematically undershoot the true wait. The unlocked
        // read-modify-write can lose concurrent samples; that only
        // slows convergence and stays deterministic.
        const unsigned q = ringOf(id);
        const Tick done = t.now();
        const std::uint64_t last = co_await t.read(lastDoneAddr(q));
        co_await t.write(lastDoneAddr(q), done);
        const std::int64_t sample =
            last == 0 || done <= last
                ? static_cast<std::int64_t>(sched.service[id])
                : static_cast<std::int64_t>(done - last);
        const std::int64_t old = static_cast<std::int64_t>(
            co_await t.read(ewmaAddr(q)));
        std::int64_t next =
            old == 0 ? sample : old + ((sample - old) >> ewmaShift);
        if (next < 1)
            next = 1;
        co_await t.write(ewmaAddr(q),
                         static_cast<std::uint64_t>(next));
    }
    if (spec_.retryPolicy == RetryPolicy::Budgeted)
        co_await t.fetchAdd(successesAddr, 1);
}

ThreadTask
ServerHarness::dispatcherThread(ThreadApi t, SyncLib *lib)
{
    const CoreId d = t.id();
    PerCore &pc = perCore[d];
    StatRegistry &st = t.stats();
    const std::string prefix = corePrefix(d);
    const bool slo_on = spec_.sloTicks > 0;
    const bool tenants_on = spec_.tenantsEnabled();

    // Min-heap of this dispatcher's pending client retries, ordered
    // by due tick (ties by id). Host-side state is fine here: a retry
    // belongs to the dispatcher that generated the request, and every
    // tick in it comes from simulated time.
    std::vector<PendingRetry> retries;
    const auto later = [](const PendingRetry &a, const PendingRetry &b) {
        return a.due != b.due ? a.due > b.due : a.id > b.id;
    };

    std::uint64_t next = d; // next fresh request id for this dispatcher
    const std::uint64_t total = sched.arrival.size();

    while (next < total || !retries.empty()) {
        // Serve whichever is due first: the next fresh arrival or the
        // earliest pending retry.
        PendingRetry cur;
        const bool take_retry =
            !retries.empty() &&
            (next >= total || retries.front().due <= sched.arrival[next]);
        if (take_retry) {
            std::pop_heap(retries.begin(), retries.end(), later);
            cur = retries.back();
            retries.pop_back();
        } else {
            cur = {sched.arrival[next], next, 0};
            next += numDisp;
        }

        const Tick now = t.now();
        if (cur.due > now)
            co_await t.compute(cur.due - now);

        const std::uint64_t id = cur.id;
        const unsigned ten = tenantOf(id);
        if (cur.attempt == 0) {
            // A request is generated exactly once, at its first
            // admission attempt; retries are tracked separately.
            pc.generated += 1;
            st.counter(prefix + "generated").inc();
            if (tenants_on)
                pc.tenant[ten].generated += 1;
        } else {
            pc.retries += 1;
            st.counter(prefix + "retries").inc();
        }

        // Round-robin over the rings so each one sees every producer.
        const unsigned qi = ringOf(id);
        const DispatchQueue &q = queues[qi];

        ShedCause cause = ShedCause::None;
        if (slo_on) {
            // Predicted wait = ring depth x the EWMA of the ring's
            // observed service interval. Brownout: the low tenant
            // only gets brownoutRatio of the SLO headroom, so under
            // pressure it sheds first and the high tenant's p99
            // holds.
            const std::uint64_t depth = co_await q.depth(t);
            std::uint64_t ewma = co_await t.read(ewmaAddr(qi));
            if (ewma == 0)
                ewma = spec_.serviceMean;
            const double limit =
                ten == 1 && tenants_on
                    ? spec_.brownoutRatio *
                          static_cast<double>(spec_.sloTicks)
                    : static_cast<double>(spec_.sloTicks);
            if (static_cast<double>(depth * ewma) > limit)
                cause = ShedCause::Slo;
        }
        if (cause == ShedCause::None) {
            const bool ok = co_await q.tryPush(t, lib, id + 1);
            if (!ok)
                cause = ShedCause::Full;
        }
        if (cause == ShedCause::None)
            continue;

        // Shed: the client retries if the policy and budget allow,
        // otherwise this is the request's final disposition.
        bool retry = spec_.retryPolicy != RetryPolicy::None &&
                     cur.attempt < spec_.retryLimit;
        if (retry && spec_.retryPolicy == RetryPolicy::Budgeted) {
            retry = co_await claimRetryToken(t);
            if (!retry) {
                pc.retryDenied += 1;
                st.counter(prefix + "retryDenied").inc();
            }
        }
        if (retry) {
            const Tick due = t.now() + retryDelay(id, cur.attempt);
            retries.push_back({due, id, cur.attempt + 1});
            std::push_heap(retries.begin(), retries.end(), later);
            continue;
        }
        if (cause == ShedCause::Slo) {
            pc.rejectedSlo += 1;
            st.counter(prefix + "rejectedSlo").inc();
            if (tenants_on)
                pc.tenant[ten].rejectedSlo += 1;
        } else {
            pc.rejected += 1;
            st.counter(prefix + "rejected").inc();
            if (tenants_on)
                pc.tenant[ten].rejected += 1;
        }
    }

    // Last producer out raises the stop flag and wakes the drainers.
    // Retry heaps are fully drained above, so no request is still in
    // flight on the client side when the flag goes up.
    const std::uint64_t before =
        co_await t.fetchAdd(producersDoneAddr, 1);
    if (before + 1 == numDisp) {
        co_await t.write(stopAddr, 1);
        for (const DispatchQueue &q : queues)
            co_await q.wakeAll(t, lib);
    }
}

ThreadTask
ServerHarness::workerThread(ThreadApi t, SyncLib *lib)
{
    const CoreId c = t.id();
    const bool drainer = c < numDisp + queues.size();
    const LocalDeque own = deques[c];
    PerCore &pc = perCore[c];
    StatRegistry &st = t.stats();
    const std::string prefix = corePrefix(c);
    // Steal targets: only drainers ever hold queued work in open-loop
    // mode, so the sweep stays short and the drainer deques hot.
    const unsigned victims = queues.size();
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + c * 0xc2b2ae35ULL + 17);
    std::uint64_t batch[drainBatch];

    for (;;) {
        // 1. Serve everything in our own deque, oldest first.
        for (;;) {
            const std::uint64_t v = co_await own.popFront(t, lib);
            if (!v)
                break;
            co_await execRequest(t, v - 1);
        }

        // 2. Drainers refill from their dispatch ring (blocking while
        //    it is empty and producers are still running).
        if (drainer) {
            const unsigned n = co_await queues[c - numDisp].popBatch(
                t, lib, stopAddr, batch, drainBatch);
            if (n) {
                for (unsigned i = 0; i < n; ++i) {
                    const bool ok =
                        co_await own.pushBack(t, lib, batch[i]);
                    if (!ok)
                        co_await execRequest(t, batch[i] - 1);
                }
                continue;
            }
            // 0 = stop flag up and the ring fully drained.
        }

        // 3. Steal from a drainer deque, rotating the first victim.
        bool got = false;
        const unsigned start = rng.range(victims);
        for (unsigned k = 0; k < victims; ++k) {
            const CoreId victim = numDisp + (start + k) % victims;
            if (victim == c)
                continue;
            const std::uint64_t v =
                co_await deques[victim].stealBack(t, lib);
            if (v) {
                pc.steals += 1;
                st.counter(prefix + "steals").inc();
                co_await execRequest(t, v - 1);
                got = true;
                break;
            }
        }
        if (got)
            continue;

        // 4. Nothing anywhere: exit once the producers are done,
        //    otherwise back off and sweep again.
        const std::uint64_t stop = co_await t.read(stopAddr);
        if (stop)
            co_return;
        co_await t.compute(idleBackoff);
    }
}

ThreadTask
ServerHarness::closedWorkerThread(ThreadApi t, SyncLib *lib)
{
    const CoreId c = t.id();
    const LocalDeque own = deques[c];
    PerCore &pc = perCore[c];
    StatRegistry &st = t.stats();
    const std::string prefix = corePrefix(c);
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + c * 0xc2b2ae35ULL + 17);

    // Task ids this worker is responsible for seeding.
    const std::uint64_t first =
        static_cast<std::uint64_t>(c) * spec_.tasksPerWorker;
    std::uint64_t seeded = 0;

    for (;;) {
        for (;;) {
            const std::uint64_t v = co_await own.popFront(t, lib);
            if (!v)
                break;
            co_await execRequest(t, v - 1);
        }

        // Seed the next wave of our own tasks (bounded by the deque).
        if (seeded < spec_.tasksPerWorker) {
            while (seeded < spec_.tasksPerWorker) {
                const std::uint64_t id = first + seeded;
                const bool ok = co_await own.pushBack(t, lib, id + 1);
                if (!ok)
                    break;
                ++seeded;
                pc.generated += 1;
                st.counter(prefix + "generated").inc();
            }
            continue;
        }

        // All our tasks seeded and our deque is dry: steal anywhere.
        bool got = false;
        const unsigned start = rng.range(numThreads);
        for (unsigned k = 0; k < numThreads; ++k) {
            const CoreId victim = (start + k) % numThreads;
            if (victim == c)
                continue;
            const std::uint64_t v =
                co_await deques[victim].stealBack(t, lib);
            if (v) {
                pc.steals += 1;
                st.counter(prefix + "steals").inc();
                co_await execRequest(t, v - 1);
                got = true;
                break;
            }
        }
        if (!got)
            co_return;
    }
}

ServerStats
ServerHarness::finalize(Tick makespan) const
{
    ServerStats s;
    const bool open = spec_.mode != ArrivalMode::Closed;
    s.offeredRate = open ? spec_.arrivalRate : 0.0;
    s.sloTicks = spec_.sloTicks;
    s.retryPolicy = spec_.retryPolicy;
    // Merge in core order so the result is independent of host
    // scheduling under `--threads N`.
    for (const PerCore &pc : perCore) {
        s.generated += pc.generated;
        s.completed += pc.completed;
        s.rejected += pc.rejected;
        s.steals += pc.steals;
        s.rejectedSlo += pc.rejectedSlo;
        s.retries += pc.retries;
        s.retryBudgetDenied += pc.retryDenied;
        s.sloMet += pc.sloMet;
        s.latency.merge(pc.lat);
    }
    // Final-disposition accounting: every generated request is
    // completed, finally rejected (full ring or SLO), or stranded by
    // a fault — retried attempts never add a second disposition.
    const std::uint64_t done =
        s.completed + s.rejected + s.rejectedSlo;
    s.stranded = s.generated > done ? s.generated - done : 0;
    if (spec_.sloTicks == 0)
        s.sloMet = s.completed;
    if (makespan > 0) {
        s.throughput =
            static_cast<double>(s.completed) * 1000.0 / makespan;
        s.goodput =
            static_cast<double>(s.sloMet) * 1000.0 / makespan;
    }
    // Saturation knee: with bounded queues, sustained overload always
    // surfaces as shed (or fault-stranded) requests. Throughput-vs-
    // offered comparisons are noisy at small request counts (the
    // post-arrival drain tail dilutes the rate), so shed fraction >1%
    // is the criterion — counting each request's *final* disposition
    // once, so retries cannot push a run over the knee by themselves.
    if (open && s.generated > 0)
        s.knee =
            (s.rejected + s.rejectedSlo + s.stranded) * 100 >
            s.generated;

    if (spec_.tenantsEnabled()) {
        const double rates[2] = {spec_.tenantHiRate,
                                 spec_.tenantLoRate};
        const char *names[2] = {"hi", "lo"};
        for (unsigned i = 0; i < 2; ++i) {
            TenantStats ts;
            ts.name = names[i];
            ts.offeredRate = rates[i];
            for (const PerCore &pc : perCore) {
                const TenantSlot &slot = pc.tenant[i];
                ts.generated += slot.generated;
                ts.completed += slot.completed;
                ts.rejected += slot.rejected;
                ts.rejectedSlo += slot.rejectedSlo;
                ts.sloMet += slot.sloMet;
                ts.latency.merge(slot.lat);
            }
            const std::uint64_t tdone =
                ts.completed + ts.rejected + ts.rejectedSlo;
            ts.stranded =
                ts.generated > tdone ? ts.generated - tdone : 0;
            if (spec_.sloTicks == 0)
                ts.sloMet = ts.completed;
            if (makespan > 0) {
                ts.throughput = static_cast<double>(ts.completed) *
                                1000.0 / makespan;
                ts.goodput = static_cast<double>(ts.sloMet) * 1000.0 /
                             makespan;
            }
            s.tenants.push_back(std::move(ts));
        }
    }
    return s;
}

} // namespace srv
} // namespace misar
