#include "srv/task_queue.hh"

namespace misar {
namespace srv {

using cpu::SubTask;
using cpu::ThreadApi;
using sync::SyncLib;

SubTask<bool>
DispatchQueue::tryPush(ThreadApi t, SyncLib *lib,
                       std::uint64_t value) const
{
    co_await lib->mutexLock(t, lockAddr());
    const std::uint64_t head = co_await t.read(headAddr());
    const std::uint64_t tail = co_await t.read(tailAddr());
    if (tail - head >= cap) {
        co_await lib->mutexUnlock(t, lockAddr());
        co_return false;
    }
    co_await t.write(slotAddr(tail), value);
    co_await t.write(tailAddr(), tail + 1);
    if (tail == head)
        co_await lib->condSignal(t, notEmptyAddr());
    co_await lib->mutexUnlock(t, lockAddr());
    co_return true;
}

SubTask<unsigned>
DispatchQueue::popBatch(ThreadApi t, SyncLib *lib, Addr stop_addr,
                        std::uint64_t *out, unsigned max) const
{
    co_await lib->mutexLock(t, lockAddr());
    std::uint64_t head, tail;
    for (;;) {
        head = co_await t.read(headAddr());
        tail = co_await t.read(tailAddr());
        if (head != tail)
            break;
        const std::uint64_t stop = co_await t.read(stop_addr);
        if (stop) {
            co_await lib->mutexUnlock(t, lockAddr());
            co_return 0;
        }
        co_await lib->condWait(t, notEmptyAddr(), lockAddr());
    }
    unsigned n = 0;
    while (n < max && head != tail) {
        out[n++] = co_await t.read(slotAddr(head));
        ++head;
    }
    co_await t.write(headAddr(), head);
    co_await lib->mutexUnlock(t, lockAddr());
    co_return n;
}

SubTask<>
DispatchQueue::wakeAll(ThreadApi t, SyncLib *lib) const
{
    co_await lib->mutexLock(t, lockAddr());
    co_await lib->condBroadcast(t, notEmptyAddr());
    co_await lib->mutexUnlock(t, lockAddr());
}

SubTask<std::uint64_t>
DispatchQueue::depth(ThreadApi t) const
{
    const std::uint64_t head = co_await t.read(headAddr());
    const std::uint64_t tail = co_await t.read(tailAddr());
    // tail can read older than head (unlocked): clamp to 0 rather
    // than wrap.
    co_return tail >= head ? tail - head : 0;
}

SubTask<bool>
LocalDeque::pushBack(ThreadApi t, SyncLib *lib,
                     std::uint64_t value) const
{
    co_await lib->mutexLock(t, lockAddr());
    const std::uint64_t top = co_await t.read(topAddr());
    const std::uint64_t bot = co_await t.read(botAddr());
    if (bot - top >= cap) {
        co_await lib->mutexUnlock(t, lockAddr());
        co_return false;
    }
    co_await t.write(slotAddr(bot), value);
    co_await t.write(botAddr(), bot + 1);
    co_await lib->mutexUnlock(t, lockAddr());
    co_return true;
}

SubTask<std::uint64_t>
LocalDeque::popFront(ThreadApi t, SyncLib *lib) const
{
    co_await lib->mutexLock(t, lockAddr());
    const std::uint64_t top = co_await t.read(topAddr());
    const std::uint64_t bot = co_await t.read(botAddr());
    std::uint64_t v = 0;
    if (top != bot) {
        v = co_await t.read(slotAddr(top));
        co_await t.write(topAddr(), top + 1);
    }
    co_await lib->mutexUnlock(t, lockAddr());
    co_return v;
}

SubTask<std::uint64_t>
LocalDeque::stealBack(ThreadApi t, SyncLib *lib) const
{
    co_await lib->mutexLock(t, lockAddr());
    const std::uint64_t top = co_await t.read(topAddr());
    const std::uint64_t bot = co_await t.read(botAddr());
    std::uint64_t v = 0;
    if (top != bot) {
        v = co_await t.read(slotAddr(bot - 1));
        co_await t.write(botAddr(), bot - 1);
    }
    co_await lib->mutexUnlock(t, lockAddr());
    co_return v;
}

} // namespace srv
} // namespace misar
