/**
 * @file
 * Result block of one server run. Separate from server_app.hh so the
 * observability layer (run report) can consume it without pulling in
 * the harness/coroutine machinery.
 */

#ifndef MISAR_SRV_SERVER_STATS_HH
#define MISAR_SRV_SERVER_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "sim/types.hh"

namespace misar {
namespace srv {

/**
 * What a shed request's client does next. Shedding happens at
 * admission (full ring, or predicted wait past the SLO); the policy
 * decides whether the request comes back.
 */
enum class RetryPolicy
{
    None,     ///< shed is final — the PR 9 behavior
    Naive,    ///< always retry (up to the attempt cap): storm-prone
    Budgeted, ///< retries draw from a token bucket refilled by successes
};

/** Parse a CLI/spec name ("none", "naive", "budgeted"). */
bool parseRetryPolicy(const std::string &name, RetryPolicy &out);

const char *retryPolicyName(RetryPolicy p);

/** Comma-joined list of valid names, for error messages. */
std::string retryPolicyNames();

/** Per-tenant slice of the run's request accounting. */
struct TenantStats
{
    std::string name;          ///< "hi" or "lo"
    double offeredRate = 0.0;  ///< requests per kilotick
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;    ///< final sheds at a full ring
    std::uint64_t rejectedSlo = 0; ///< final sheds by SLO admission
    std::uint64_t stranded = 0;    ///< lost to a dead core
    std::uint64_t sloMet = 0;      ///< completions within the SLO
    double throughput = 0.0;       ///< completions per kilotick
    double goodput = 0.0;          ///< SLO-met completions per kilotick
    obs::LogHistogram latency;
};

/**
 * Aggregated request accounting and latency of one run.
 *
 * Invariant (final-disposition accounting): generated == completed +
 * rejected + rejectedSlo + stranded. Each *request* is generated once
 * and reaches exactly one final disposition; retried attempts are
 * tracked separately in `retries` and never double-count the request.
 * `stranded` is nonzero only when a core died mid-request (fault
 * presets) — requests are otherwise completed or counted rejected,
 * never lost.
 */
struct ServerStats
{
    /** Offered load in requests per kilotick (0 for closed loop). */
    double offeredRate = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0; ///< finally shed at a full dispatch queue
    std::uint64_t stranded = 0; ///< lost to a dead core (faults only)
    std::uint64_t steals = 0;   ///< successful deque steals

    /** Finally shed by SLO admission (predicted wait past the SLO). */
    std::uint64_t rejectedSlo = 0;
    /** Retry attempts made beyond each request's first admission try. */
    std::uint64_t retries = 0;
    /** Retries the budget refused (Budgeted policy only). */
    std::uint64_t retryBudgetDenied = 0;
    /** Completions within the SLO (== completed when no SLO is set). */
    std::uint64_t sloMet = 0;

    /** The run's latency SLO in ticks; 0 when none was set. */
    Tick sloTicks = 0;
    /** Retry policy the run used. */
    RetryPolicy retryPolicy = RetryPolicy::None;

    /** Achieved throughput in requests per kilotick of makespan. */
    double throughput = 0.0;
    /**
     * SLO-met completions per kilotick of makespan. Equal to
     * `throughput` when no SLO is set — every completion counts.
     */
    double goodput = 0.0;

    /**
     * Past the saturation knee: more than 1% of generated requests
     * reached a shed/stranded final disposition. Final-disposition
     * accounting means a request that retried five times and then
     * completed contributes nothing here.
     */
    bool knee = false;

    /** Per-request latency (ticks from scheduled arrival to done).
     *  Empty for closed-loop runs, which have no arrival instant. */
    obs::LogHistogram latency;

    /**
     * Per-tenant accounting, in priority order ("hi" then "lo").
     * Empty unless the run served a two-tenant mix.
     */
    std::vector<TenantStats> tenants;
};

} // namespace srv
} // namespace misar

#endif // MISAR_SRV_SERVER_STATS_HH
