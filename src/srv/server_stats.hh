/**
 * @file
 * Result block of one server run. Separate from server_app.hh so the
 * observability layer (run report) can consume it without pulling in
 * the harness/coroutine machinery.
 */

#ifndef MISAR_SRV_SERVER_STATS_HH
#define MISAR_SRV_SERVER_STATS_HH

#include <cstdint>

#include "obs/histogram.hh"
#include "sim/types.hh"

namespace misar {
namespace srv {

/**
 * Aggregated request accounting and latency of one run.
 *
 * Invariant: generated == completed + rejected + stranded. `stranded`
 * is nonzero only when a core died mid-request (fault presets) —
 * requests are otherwise completed or counted rejected, never lost.
 */
struct ServerStats
{
    /** Offered load in requests per kilotick (0 for closed loop). */
    double offeredRate = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0; ///< shed at a full dispatch queue
    std::uint64_t stranded = 0; ///< lost to a dead core (faults only)
    std::uint64_t steals = 0;   ///< successful deque steals

    /** Achieved throughput in requests per kilotick of makespan. */
    double throughput = 0.0;

    /**
     * Past the saturation knee: more than 1% of generated requests
     * were shed at a full queue (or stranded by a fault). Bounded
     * queues turn sustained overload into rejections, so this is the
     * saturation signal.
     */
    bool knee = false;

    /** Per-request latency (ticks from scheduled arrival to done).
     *  Empty for closed-loop runs, which have no arrival instant. */
    obs::LogHistogram latency;
};

} // namespace srv
} // namespace misar

#endif // MISAR_SRV_SERVER_STATS_HH
