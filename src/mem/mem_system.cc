#include "mem/mem_system.hh"

#include "sim/logging.hh"

namespace misar {
namespace mem {

MemSystem::MemSystem(EventQueue &eq, const SystemConfig &cfg,
                     StatRegistry &stats, const TileRuntime &rt)
{
    const unsigned n = cfg.numCores;
    _mesh = std::make_unique<noc::Mesh>(eq, cfg.noc, cfg.meshDim(), stats,
                                        rt);

    auto send_fn = [this](std::shared_ptr<MemMsg> m) {
        _mesh->send(std::move(m));
    };

    l1s.reserve(n);
    homes.reserve(n);
    for (CoreId c = 0; c < n; ++c) {
        EventQueue &teq = rt.eqFor(c, eq);
        StatRegistry &tst = rt.statsFor(c, stats);
        l1s.push_back(std::make_unique<L1Cache>(teq, cfg.mem, c, n, _fmem,
                                                send_fn, tst,
                                                cfg.smtWays));
        homes.push_back(std::make_unique<HomeSlice>(teq, cfg.mem, c, n,
                                                    send_fn, tst));
        _mesh->setSink(c, [this, c](std::shared_ptr<noc::Packet> p) {
            dispatch(c, std::move(p));
        });
    }
}

void
MemSystem::dispatch(CoreId tile, std::shared_ptr<noc::Packet> pkt)
{
    auto mm = std::dynamic_pointer_cast<MemMsg>(pkt);
    if (!mm) {
        if (!otherSink)
            panic("tile %u: non-coherence packet with no extra sink", tile);
        otherSink(tile, std::move(pkt));
        return;
    }
    switch (mm->op) {
      case MemOp::GetS:
      case MemOp::GetM:
      case MemOp::PutM:
      case MemOp::PutE:
      case MemOp::InvAck:
      case MemOp::FwdAck:
        homes[tile]->handleMessage(std::move(mm));
        break;
      default:
        l1s[tile]->handleMessage(mm);
        break;
    }
}

} // namespace mem
} // namespace misar
