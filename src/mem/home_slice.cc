#include "mem/home_slice.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace misar {
namespace mem {

HomeSlice::HomeSlice(EventQueue &eq, const MemConfig &cfg, CoreId tile,
                     unsigned num_tiles, SendFn send, StatRegistry &stats)
    : eq(eq), cfg(cfg), tile(tile), numTiles(num_tiles),
      send(std::move(send)), stats(stats),
      statPrefix("tile" + std::to_string(tile) + ".llc.")
{
    if (num_tiles > maxCores)
        fatal("HomeSlice supports at most %u tiles", maxCores);
}

unsigned
HomeSlice::setOf(Addr block) const
{
    // Lines interleave across tiles; within a slice, consecutive
    // lines of this slice map to consecutive sets.
    std::uint64_t line = block / blockBytes;
    return static_cast<unsigned>((line / numTiles) &
                                 (cfg.llcSliceSets - 1));
}

HomeSlice::Entry *
HomeSlice::findEntry(Addr block)
{
    auto it = entries.find(block);
    return it == entries.end() ? nullptr : &it->second;
}

HomeSlice::Entry &
HomeSlice::entry(Addr block)
{
    auto it = entries.find(block);
    if (it != entries.end())
        return it->second;
    const unsigned set = setOf(block);
    enforceCapacity(set);
    setResidents[set].push_back(block);
    return entries[block];
}

void
HomeSlice::enforceCapacity(unsigned set)
{
    std::vector<Addr> &res = setResidents[set];
    if (res.size() < cfg.llcWays)
        return;
    // Victim: LRU among evictable entries. Exclusively-owned or
    // in-flight lines are not evictable (see header).
    Addr victim = invalidAddr;
    Tick oldest = maxTick;
    for (Addr a : res) {
        const Entry &e = entries.at(a);
        if (e.busy || e.pendingAcks || !e.queue.empty())
            continue;
        if (e.state == DState::Exclusive)
            continue;
        if (e.lastTouch < oldest) {
            oldest = e.lastTouch;
            victim = a;
        }
    }
    if (victim == invalidAddr) {
        stats.counter(statPrefix + "setOverflows").inc();
        return; // every way pinned: overflow rather than deadlock
    }
    Entry &v = entries.at(victim);
    if (v.state == DState::Shared) {
        for (unsigned c = 0; c < numTiles; ++c)
            if (v.sharers.test(c))
                sendMsg(c, MemOp::BackInv, victim);
    }
    stats.counter(statPrefix + "llcEvictions").inc();
    entries.erase(victim);
    res.erase(std::find(res.begin(), res.end(), victim));
}

void
HomeSlice::sendMsg(CoreId dst, MemOp op, Addr block, bool hw_sync)
{
    auto m = std::make_shared<MemMsg>(tile, dst, op, block);
    m->hwSync = hw_sync;
    send(std::move(m));
}

void
HomeSlice::handleMessage(std::shared_ptr<MemMsg> msg)
{
    const Addr block = msg->block;
    switch (msg->op) {
      case MemOp::GetS:
      case MemOp::GetM: {
        Job job;
        job.msg = std::move(msg);
        job.block = block;
        submit(block, std::move(job));
        break;
      }
      case MemOp::PutM:
      case MemOp::PutE: {
        // Puts are fire-and-forget from the L1. If the entry is busy
        // the put may be stale by dequeue time; doPut() re-checks
        // ownership then. A put for an already-evicted entry has
        // nothing to update.
        Entry *e = findEntry(block);
        if (!e)
            break;
        if (e->busy) {
            Job job;
            job.msg = std::move(msg);
            job.block = block;
            e->queue.push_back(std::move(job));
        } else {
            doPut(block, msg);
        }
        break;
      }
      case MemOp::InvAck:
      case MemOp::FwdAck: {
        Entry *e = findEntry(block);
        if (!e || !e->busy || e->pendingAcks == 0)
            panic("home %u: unexpected ack for block %llx", tile,
                  static_cast<unsigned long long>(block));
        if (--e->pendingAcks == 0) {
            auto k = std::move(e->onAcked);
            e->onAcked = nullptr;
            k();
        }
        break;
      }
      default:
        panic("home %u: unexpected message op %d", tile,
              static_cast<int>(msg->op));
    }
}

void
HomeSlice::submit(Addr block, Job job)
{
    Entry &e = entry(block);
    if (e.busy) {
        e.queue.push_back(std::move(job));
        return;
    }
    start(block, std::move(job));
}

void
HomeSlice::start(Addr block, Job job)
{
    Entry &e = entry(block);
    e.busy = true;
    e.lastTouch = eq.now();
    Tick lat = cfg.llcHitLatency;
    if (e.cold) {
        e.cold = false;
        lat += cfg.memLatency;
        stats.counter(statPrefix + "coldMisses").inc();
    }
    stats.counter(statPrefix + "transactions").inc();
    eq.schedule(lat, [this, block, job = std::move(job)]() mutable {
        if (job.msg) {
            if (job.msg->op == MemOp::PutM || job.msg->op == MemOp::PutE) {
                doPut(block, job.msg);
                finish(block);
            } else {
                doRequest(block, job.msg);
            }
        } else {
            doGrant(block, std::move(job));
        }
    });
}

void
HomeSlice::doRequest(Addr block, const std::shared_ptr<MemMsg> &msg)
{
    Entry &e = entry(block);
    const CoreId req = msg->src();
    const bool is_get_m = (msg->op == MemOp::GetM);

    switch (e.state) {
      case DState::Uncached:
        e.state = DState::Exclusive;
        e.owner = req;
        sendMsg(req, is_get_m ? MemOp::DataM : MemOp::DataE, block);
        finish(block);
        return;

      case DState::Shared: {
        if (!is_get_m) {
            e.sharers.set(req);
            sendMsg(req, MemOp::DataS, block);
            finish(block);
            return;
        }
        // GetM on shared data: invalidate every other sharer.
        const bool req_was_sharer = e.sharers.test(req);
        unsigned invs = 0;
        for (unsigned c = 0; c < numTiles; ++c) {
            if (c != req && e.sharers.test(c)) {
                sendMsg(c, MemOp::Inv, block);
                ++invs;
            }
        }
        stats.counter(statPrefix + "invalidationsSent").inc(invs);
        auto grant = [this, block, req, req_was_sharer] {
            Entry &e2 = entry(block);
            e2.state = DState::Exclusive;
            e2.sharers.reset();
            e2.owner = req;
            sendMsg(req, req_was_sharer ? MemOp::GrantM : MemOp::DataM,
                    block);
            finish(block);
        };
        if (invs == 0) {
            grant();
        } else {
            e.pendingAcks = invs;
            e.onAcked = std::move(grant);
        }
        return;
      }

      case DState::Exclusive: {
        const CoreId owner = e.owner;
        if (owner == req) {
            // Stale ownership: the requester's PutE/PutM is still in
            // flight. The data is functionally fresh, so just
            // re-grant, and remember to drop that put when it lands.
            ++e.pendingStalePuts;
            sendMsg(req, is_get_m ? MemOp::DataM : MemOp::DataE, block);
            finish(block);
            return;
        }
        if (is_get_m) {
            sendMsg(owner, MemOp::Inv, block);
            stats.counter(statPrefix + "invalidationsSent").inc();
            e.pendingAcks = 1;
            e.onAcked = [this, block, req] {
                Entry &e2 = entry(block);
                e2.state = DState::Exclusive;
                e2.owner = req;
                sendMsg(req, MemOp::DataM, block);
                finish(block);
            };
        } else {
            sendMsg(owner, MemOp::FwdGetS, block);
            e.pendingAcks = 1;
            e.onAcked = [this, block, req, owner] {
                Entry &e2 = entry(block);
                e2.state = DState::Shared;
                e2.sharers.reset();
                e2.sharers.set(owner);
                e2.sharers.set(req);
                e2.owner = invalidCore;
                sendMsg(req, MemOp::DataS, block);
                finish(block);
            };
        }
        return;
      }
    }
}

void
HomeSlice::doGrant(Addr block, Job job)
{
    Entry &e = entry(block);
    const CoreId to = job.grantTo;
    stats.counter(statPrefix + "msaGrants").inc();

    // Invalidate everyone except the grantee.
    unsigned invs = 0;
    if (e.state == DState::Shared) {
        for (unsigned c = 0; c < numTiles; ++c) {
            if (c != to && e.sharers.test(c)) {
                sendMsg(c, MemOp::Inv, block);
                ++invs;
            }
        }
    } else if (e.state == DState::Exclusive && e.owner != to) {
        sendMsg(e.owner, MemOp::Inv, block);
        ++invs;
    } else if (e.state == DState::Exclusive && e.owner == to) {
        // The grantee may have a PutE/PutM in flight for this block;
        // make sure it cannot clobber the pushed InstallE copy.
        // (Dropping a real future put instead is harmless: the
        // directory only becomes conservatively stale.)
        ++e.pendingStalePuts;
    }

    auto fin = [this, block, to, hw = job.hwSync,
                done = std::move(job.done)] {
        Entry &e2 = entry(block);
        e2.state = DState::Exclusive;
        e2.sharers.reset();
        e2.owner = to;
        sendMsg(to, MemOp::InstallE, block, hw);
        if (done)
            done();
        finish(block);
    };
    if (invs == 0) {
        fin();
    } else {
        e.pendingAcks = invs;
        e.onAcked = std::move(fin);
    }
}

void
HomeSlice::doPut(Addr block, const std::shared_ptr<MemMsg> &msg)
{
    Entry &e = entry(block);
    if (e.state == DState::Exclusive && e.owner == msg->src() &&
        e.pendingStalePuts > 0) {
        // This put belongs to an ownership epoch we already re-granted
        // past; dropping it keeps the re-granted copy valid.
        --e.pendingStalePuts;
        return;
    }
    // Drop stale puts: only the current owner's put changes state.
    if (e.state == DState::Exclusive && e.owner == msg->src()) {
        e.state = DState::Uncached;
        e.owner = invalidCore;
        stats.counter(statPrefix + "writebacks").inc();
    }
}

void
HomeSlice::finish(Addr block)
{
    Entry &e = entry(block);
    e.busy = false;
    if (e.queue.empty())
        return;
    Job next = std::move(e.queue.front());
    e.queue.pop_front();
    start(block, std::move(next));
}

void
HomeSlice::grantExclusive(Addr block, CoreId to, bool hw_sync,
                          std::function<void()> done)
{
    Job job;
    job.block = block;
    job.grantTo = to;
    job.hwSync = hw_sync;
    job.done = std::move(done);
    submit(block, std::move(job));
}

bool
HomeSlice::isOwner(Addr block, CoreId c) const
{
    auto it = entries.find(block);
    return it != entries.end() && it->second.state == DState::Exclusive &&
           it->second.owner == c;
}

bool
HomeSlice::isSharer(Addr block, CoreId c) const
{
    auto it = entries.find(block);
    if (it == entries.end())
        return false;
    if (it->second.state == DState::Shared)
        return it->second.sharers.test(c);
    return it->second.state == DState::Exclusive && it->second.owner == c;
}

void
HomeSlice::forEachEntry(const std::function<void(const DirView &)> &fn) const
{
    for (const auto &[block, e] : entries) {
        DirView v;
        v.block = block;
        v.exclusive = e.state == DState::Exclusive;
        v.shared = e.state == DState::Shared;
        v.owner = e.owner;
        v.busy = e.busy;
        fn(v);
    }
}

} // namespace mem
} // namespace misar
