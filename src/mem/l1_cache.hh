/**
 * @file
 * Private per-core L1 data cache (MESI client side).
 *
 * Set-associative with LRU replacement. One outstanding miss per
 * cache (cores are blocking). Dirty/clean-exclusive evictions are
 * fire-and-forget PutM/PutE notifications; the home tolerates stale
 * puts by checking ownership. Each line carries the MiSAR HWSync bit
 * (paper §5): set only by MSA InstallE grants and cleared whenever
 * the line is lost or downgraded.
 */

#ifndef MISAR_MEM_L1_CACHE_HH
#define MISAR_MEM_L1_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/functional_mem.hh"
#include "mem/msg.hh"
#include "obs/tracer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"

namespace misar {
namespace mem {

/** MESI stable states for an L1 line. */
enum class L1State : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Private L1 data cache for one core. */
class L1Cache
{
  public:
    using AccessCb = std::function<void(std::uint64_t)>;
    using SendFn = std::function<void(std::shared_ptr<MemMsg>)>;

    L1Cache(EventQueue &eq, const MemConfig &cfg, CoreId core,
            unsigned num_tiles, FunctionalMem &fmem, SendFn send,
            StatRegistry &stats, unsigned max_outstanding = 1);

    /** Load the 64-bit word at @p a; @p cb receives the value. */
    void read(Addr a, AccessCb cb);

    /** Store @p v to @p a; @p cb receives the old value. */
    void write(Addr a, std::uint64_t v, AccessCb cb);

    /** Atomic RMW at @p a; @p cb receives the old value. */
    void atomic(Addr a, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2, AccessCb cb);

    /** Incoming coherence message from the NoC. */
    void handleMessage(const std::shared_ptr<MemMsg> &msg);

    /**
     * MiSAR §5 fast-path predicate: the block holding @p a is present,
     * writable (E/M), and its HWSync bit is set.
     */
    bool hasWritableHwSync(Addr a) const;

    /** Clear the HWSync bit (silent privilege revoked, paper §5). */
    void
    clearHwSync(Addr a)
    {
        if (Line *line = findLine(blockAlign(a)))
            line->hwSync = false;
    }

    /**
     * Query installed by the MSA client: true while the block holds
     * a lock the local core acquired silently and has not released.
     * While true, the line is pinned (never a victim) and incoming
     * invalidations/downgrades are deferred — the hardware analogue
     * of stalling a snoop during an atomic. flushDeferred() releases
     * them at unlock time.
     */
    using HoldQuery = std::function<bool(Addr block)>;

    void setHoldQuery(HoldQuery q) { holdQuery = std::move(q); }

    /** Process a coherence message deferred by a silent hold. */
    void flushDeferred(Addr block);

    /** Lookup state of the block holding @p a (tests/debug). */
    L1State state(Addr a) const;

    /** Read-only line view for the invariant checker. */
    struct LineView
    {
        Addr block;
        L1State state;
        bool hwSync;
    };

    /** Visit every valid line (invariant checker / debug). */
    void forEachLine(const std::function<void(const LineView &)> &fn) const;

    CoreId core() const { return _core; }

    /**
     * Attach the observability tracer: snoop anomalies — coherence
     * requests crossing an in-flight fill ("SNOOP_X") or stalled by
     * a silently-held lock ("SNOOP_DEFER") — become instant events
     * on @p track (this core's trace row).
     */
    void
    attachTracer(obs::Tracer *t, obs::TrackId track)
    {
        tracer = t;
        _track = track;
    }

  private:
    struct Line
    {
        Addr block = invalidAddr;
        L1State state = L1State::Invalid;
        bool hwSync = false;
        std::uint64_t lru = 0;
    };

    struct Mshr
    {
        bool valid = false;
        Addr block = invalidAddr;
        /**
         * A snoop that crossed the in-flight fill on the other
         * virtual network. The home serializes per-block
         * transactions and has our ack for everything it sent before
         * granting us, so a snoop arriving while the fill is
         * outstanding is always ordered after the grant: it is acked
         * immediately and applied to the line once the fill lands
         * (otherwise the late fill would install a copy the
         * directory no longer tracks).
         */
        enum class PostFill { None, ToShared, ToInvalid };
        PostFill postFill = PostFill::None;
        // Deferred functional operation, applied at grant time.
        enum class Kind { Read, Write, Atomic } kind = Kind::Read;
        Addr addr = invalidAddr;
        std::uint64_t wval = 0;
        AtomicOp aop = AtomicOp::TestAndSet;
        std::uint64_t opnd = 0, opnd2 = 0;
        AccessCb cb;
    };

    unsigned setIndex(Addr block) const;
    Line *findLine(Addr block);
    const Line *findLine(Addr block) const;

    /** Choose a victim way in @p set (invalid first, else LRU). */
    Line &victimIn(unsigned set);

    /** Evict @p line if valid (fire-and-forget PutM/PutE). */
    void evict(Line &line);

    /** Install @p block in @p state, evicting if needed. */
    Line &install(Addr block, L1State state);

    /** Start a miss: evict a victim, send @p req, park in an MSHR. */
    void startMiss(MemOp req, Mshr mshr);

    /** Grant arrived: install, apply the deferred op, call back. */
    void complete(L1State new_state, Addr block);

    void touch(Line &line);

    EventQueue &eq;
    const MemConfig &cfg;
    CoreId _core;
    unsigned numTiles;
    FunctionalMem &fmem;
    SendFn send;
    StatRegistry &stats;
    std::string statPrefix;

    std::vector<std::vector<Line>> sets;
    /** One MSHR per hardware thread sharing this cache. */
    std::vector<Mshr> mshrs;
    std::uint64_t lruClock = 0;
    HoldQuery holdQuery;
    obs::Tracer *tracer = nullptr;
    obs::TrackId _track = 0;
    /** At most one deferred coherence message per block (the
     *  blocking directory serializes per-block transactions). */
    FlatMap<Addr, std::shared_ptr<MemMsg>> deferredMsgs;
};

} // namespace mem
} // namespace misar

#endif // MISAR_MEM_L1_CACHE_HH
