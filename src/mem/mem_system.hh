/**
 * @file
 * Assembly of the coherent memory system over the mesh: one L1 and
 * one home (LLC+directory) slice per tile, plus message dispatch.
 */

#ifndef MISAR_MEM_MEM_SYSTEM_HH
#define MISAR_MEM_MEM_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/functional_mem.hh"
#include "mem/home_slice.hh"
#include "mem/l1_cache.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/tile_runtime.hh"

namespace misar {
namespace mem {

/**
 * The full memory subsystem. Non-coherence packets arriving at a
 * tile (e.g. MSA traffic) are handed to the extra sink, so the MSA
 * layer can share the mesh.
 */
class MemSystem
{
  public:
    using OtherSink =
        std::function<void(CoreId, std::shared_ptr<noc::Packet>)>;

    /**
     * @p rt routes each tile's components (L1, home slice, router,
     * NI) to its partition queue, lane, and stat shard; the default
     * empty runtime is the serial single-queue layout.
     */
    MemSystem(EventQueue &eq, const SystemConfig &cfg, StatRegistry &stats,
              const TileRuntime &rt = {});

    L1Cache &l1(CoreId c) { return *l1s[c]; }
    HomeSlice &home(CoreId c) { return *homes[c]; }
    FunctionalMem &fmem() { return _fmem; }
    noc::Mesh &mesh() { return *_mesh; }
    unsigned numTiles() const { return static_cast<unsigned>(l1s.size()); }

    /** Home slice responsible for @p block. */
    HomeSlice &homeOf(Addr block) { return home(homeTile(block, numTiles())); }

    /** Install the handler for non-coherence packets. */
    void setOtherSink(OtherSink s) { otherSink = std::move(s); }

    /**
     * Interceptor consulted on every send(); returning true means the
     * packet was consumed (dropped, delayed, duplicated...). Used by
     * the fault injector. Only send() is intercepted — coherence
     * traffic uses internal paths and is never faulted.
     */
    using SendInterceptor =
        std::function<bool(const std::shared_ptr<noc::Packet> &)>;

    void setSendInterceptor(SendInterceptor f) { interceptor = std::move(f); }

    /** Inject an arbitrary packet (used by the MSA layer). */
    void
    send(std::shared_ptr<noc::Packet> pkt)
    {
        if (interceptor && interceptor(pkt))
            return;
        _mesh->send(std::move(pkt));
    }

    /** Inject bypassing the interceptor (injector re-injection). */
    void sendDirect(std::shared_ptr<noc::Packet> pkt)
    {
        _mesh->send(std::move(pkt));
    }

  private:
    void dispatch(CoreId tile, std::shared_ptr<noc::Packet> pkt);

    FunctionalMem _fmem;
    std::unique_ptr<noc::Mesh> _mesh;
    std::vector<std::unique_ptr<L1Cache>> l1s;
    std::vector<std::unique_ptr<HomeSlice>> homes;
    OtherSink otherSink;
    SendInterceptor interceptor;
};

} // namespace mem
} // namespace misar

#endif // MISAR_MEM_MEM_SYSTEM_HH
