#include "mem/l1_cache.hh"

#include "sim/logging.hh"

namespace misar {
namespace mem {

L1Cache::L1Cache(EventQueue &eq, const MemConfig &cfg, CoreId core,
                 unsigned num_tiles, FunctionalMem &fmem, SendFn send,
                 StatRegistry &stats, unsigned max_outstanding)
    : eq(eq), cfg(cfg), _core(core), numTiles(num_tiles), fmem(fmem),
      send(std::move(send)), stats(stats),
      statPrefix("tile" + std::to_string(core) + ".l1."),
      mshrs(max_outstanding ? max_outstanding : 1)
{
    sets.resize(cfg.l1Sets);
    for (auto &s : sets)
        s.resize(cfg.l1Ways);
}

unsigned
L1Cache::setIndex(Addr block) const
{
    return static_cast<unsigned>((block / blockBytes) & (cfg.l1Sets - 1));
}

L1Cache::Line *
L1Cache::findLine(Addr block)
{
    for (auto &line : sets[setIndex(block)])
        if (line.state != L1State::Invalid && line.block == block)
            return &line;
    return nullptr;
}

const L1Cache::Line *
L1Cache::findLine(Addr block) const
{
    for (const auto &line : sets[setIndex(block)])
        if (line.state != L1State::Invalid && line.block == block)
            return &line;
    return nullptr;
}

void
L1Cache::touch(Line &line)
{
    line.lru = ++lruClock;
}

L1Cache::Line &
L1Cache::victimIn(unsigned set)
{
    Line *victim = nullptr;
    for (auto &line : sets[set]) {
        if (line.state == L1State::Invalid)
            return line;
        // Never evict a block holding a silently-held lock.
        if (holdQuery && holdQuery(line.block))
            continue;
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }
    if (!victim)
        panic("L1 %u: all ways of a set pinned by silent holds", _core);
    return *victim;
}

void
L1Cache::flushDeferred(Addr block)
{
    std::shared_ptr<MemMsg> msg = deferredMsgs.take(blockAlign(block));
    if (!msg)
        return;
    handleMessage(msg);
}

void
L1Cache::evict(Line &line)
{
    if (line.state == L1State::Invalid)
        return;
    stats.counter(statPrefix + "evictions").inc();
    // Fire-and-forget: the home checks ownership, so a stale put that
    // crosses an Inv/Fwd in flight is dropped there harmlessly.
    if (line.state == L1State::Modified) {
        send(std::make_shared<MemMsg>(_core, homeTile(line.block, numTiles),
                                      MemOp::PutM, line.block));
    } else if (line.state == L1State::Exclusive) {
        send(std::make_shared<MemMsg>(_core, homeTile(line.block, numTiles),
                                      MemOp::PutE, line.block));
    }
    // Shared lines drop silently; the directory tolerates stale
    // sharers (they simply ack a future Inv without holding the line).
    line.state = L1State::Invalid;
    line.hwSync = false;
    line.block = invalidAddr;
}

L1Cache::Line &
L1Cache::install(Addr block, L1State state)
{
    Line *line = findLine(block);
    if (!line) {
        line = &victimIn(setIndex(block));
        evict(*line);
    }
    line->block = block;
    line->state = state;
    touch(*line);
    return *line;
}

void
L1Cache::startMiss(MemOp req, Mshr m)
{
    for (Mshr &slot : mshrs) {
        if (!slot.valid) {
            slot = std::move(m);
            slot.valid = true;
            send(std::make_shared<MemMsg>(
                _core, homeTile(slot.block, numTiles), req, slot.block));
            return;
        }
    }
    panic("L1 %u: more outstanding misses than hardware threads",
          _core);
}

void
L1Cache::read(Addr a, AccessCb cb)
{
    const Addr block = blockAlign(a);
    eq.schedule(cfg.l1HitLatency, [this, a, block, cb = std::move(cb)] {
        Line *line = findLine(block);
        if (line) {
            stats.counter(statPrefix + "hits").inc();
            touch(*line);
            cb(fmem.read(a));
            return;
        }
        stats.counter(statPrefix + "misses").inc();
        Mshr m;
        m.block = block;
        m.kind = Mshr::Kind::Read;
        m.addr = a;
        m.cb = std::move(cb);
        startMiss(MemOp::GetS, std::move(m));
    });
}

void
L1Cache::write(Addr a, std::uint64_t v, AccessCb cb)
{
    const Addr block = blockAlign(a);
    eq.schedule(cfg.l1HitLatency, [this, a, v, block, cb = std::move(cb)] {
        Line *line = findLine(block);
        if (line && (line->state == L1State::Modified ||
                     line->state == L1State::Exclusive)) {
            stats.counter(statPrefix + "hits").inc();
            line->state = L1State::Modified;
            touch(*line);
            std::uint64_t old = fmem.read(a);
            fmem.write(a, v);
            cb(old);
            return;
        }
        stats.counter(statPrefix + "misses").inc();
        Mshr m;
        m.block = block;
        m.kind = Mshr::Kind::Write;
        m.addr = a;
        m.wval = v;
        m.cb = std::move(cb);
        startMiss(MemOp::GetM, std::move(m));
    });
}

void
L1Cache::atomic(Addr a, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2, AccessCb cb)
{
    const Addr block = blockAlign(a);
    eq.schedule(cfg.l1HitLatency,
                [this, a, op, operand, operand2, block, cb = std::move(cb)] {
        Line *line = findLine(block);
        if (line && (line->state == L1State::Modified ||
                     line->state == L1State::Exclusive)) {
            stats.counter(statPrefix + "hits").inc();
            line->state = L1State::Modified;
            touch(*line);
            cb(fmem.atomic(a, op, operand, operand2));
            return;
        }
        stats.counter(statPrefix + "misses").inc();
        Mshr m;
        m.block = block;
        m.kind = Mshr::Kind::Atomic;
        m.addr = a;
        m.aop = op;
        m.opnd = operand;
        m.opnd2 = operand2;
        m.cb = std::move(cb);
        startMiss(MemOp::GetM, std::move(m));
    });
}

void
L1Cache::complete(L1State new_state, Addr block)
{
    Mshr *hit = nullptr;
    for (Mshr &slot : mshrs) {
        if (slot.valid && slot.block == block) {
            hit = &slot;
            break;
        }
    }
    if (!hit)
        panic("L1 %u: grant with no matching outstanding miss", _core);
    Line &line = install(block, new_state);
    Mshr m = std::move(*hit);
    hit->valid = false;

    // A snoop serialized after this grant crossed the fill in
    // flight: honor it now that the data (and the functional op
    // below) have been satisfied exactly once.
    if (m.postFill == Mshr::PostFill::ToShared) {
        line.state = L1State::Shared;
        line.hwSync = false;
    } else if (m.postFill == Mshr::PostFill::ToInvalid) {
        line.state = L1State::Invalid;
        line.hwSync = false;
        line.block = invalidAddr;
    }

    std::uint64_t result = 0;
    switch (m.kind) {
      case Mshr::Kind::Read:
        result = fmem.read(m.addr);
        break;
      case Mshr::Kind::Write:
        result = fmem.read(m.addr);
        fmem.write(m.addr, m.wval);
        break;
      case Mshr::Kind::Atomic:
        result = fmem.atomic(m.addr, m.aop, m.opnd, m.opnd2);
        break;
    }
    m.cb(result);
}

void
L1Cache::handleMessage(const std::shared_ptr<MemMsg> &msg)
{
    const Addr block = msg->block;
    const CoreId home = homeTile(block, numTiles);
    if ((msg->op == MemOp::FwdGetS || msg->op == MemOp::Inv) &&
        holdQuery && holdQuery(block) && findLine(block)) {
        // The block carries a silently-held lock: stall the snoop
        // until the lock is released (see header).
        if (deferredMsgs.contains(block))
            panic("L1 %u: second deferred snoop for block %llx", _core,
                  (unsigned long long)block);
        deferredMsgs[block] = msg;
        stats.counter(statPrefix + "deferredSnoops").inc();
        if (tracer)
            tracer->instant(_track, eq.now(), "SNOOP_DEFER", block);
        return;
    }
    if (msg->op == MemOp::FwdGetS || msg->op == MemOp::Inv ||
        msg->op == MemOp::BackInv) {
        for (Mshr &slot : mshrs) {
            if (!slot.valid || slot.block != block)
                continue;
            // Snoop crossed our in-flight fill (see Mshr::PostFill).
            stats.counter(statPrefix + "crossedSnoops").inc();
            if (tracer)
                tracer->instant(_track, eq.now(), "SNOOP_X", block);
            if (msg->op == MemOp::FwdGetS) {
                if (slot.postFill == Mshr::PostFill::None)
                    slot.postFill = Mshr::PostFill::ToShared;
                send(std::make_shared<MemMsg>(_core, home, MemOp::FwdAck,
                                              block));
            } else {
                slot.postFill = Mshr::PostFill::ToInvalid;
                if (msg->op == MemOp::Inv)
                    send(std::make_shared<MemMsg>(_core, home,
                                                  MemOp::InvAck, block));
            }
            // Any copy we still hold is from the pre-grant epoch and
            // covered by the same snoop.
            if (Line *line = findLine(block)) {
                line->state = L1State::Invalid;
                line->hwSync = false;
                line->block = invalidAddr;
            }
            return;
        }
    }
    switch (msg->op) {
      case MemOp::FwdGetS: {
        // Downgrade to S; ack even if we no longer hold the line
        // (a put of ours crossed the forward in flight).
        Line *line = findLine(block);
        if (line) {
            line->state = L1State::Shared;
            line->hwSync = false;
        }
        send(std::make_shared<MemMsg>(_core, home, MemOp::FwdAck, block));
        break;
      }
      case MemOp::Inv: {
        Line *line = findLine(block);
        if (line) {
            line->state = L1State::Invalid;
            line->hwSync = false;
            line->block = invalidAddr;
            stats.counter(statPrefix + "invalidations").inc();
        }
        send(std::make_shared<MemMsg>(_core, home, MemOp::InvAck, block));
        break;
      }
      case MemOp::BackInv: {
        // LLC eviction: drop our (shared) copy; no ack expected.
        Line *line = findLine(block);
        if (line) {
            line->state = L1State::Invalid;
            line->hwSync = false;
            line->block = invalidAddr;
            stats.counter(statPrefix + "backInvalidations").inc();
        }
        break;
      }
      case MemOp::DataS:
        complete(L1State::Shared, block);
        break;
      case MemOp::DataE:
        complete(L1State::Exclusive, block);
        break;
      case MemOp::DataM:
      case MemOp::GrantM:
        complete(L1State::Modified, block);
        break;
      case MemOp::InstallE: {
        // MSA lock grant pushed the block to us (paper §5).
        Line &line = install(block, L1State::Exclusive);
        line.hwSync = msg->hwSync;
        break;
      }
      default:
        panic("L1 %u: unexpected coherence message %d", _core,
              static_cast<int>(msg->op));
    }
}

bool
L1Cache::hasWritableHwSync(Addr a) const
{
    const Line *line = findLine(blockAlign(a));
    return line && line->hwSync &&
           (line->state == L1State::Exclusive ||
            line->state == L1State::Modified);
}

L1State
L1Cache::state(Addr a) const
{
    const Line *line = findLine(blockAlign(a));
    return line ? line->state : L1State::Invalid;
}

void
L1Cache::forEachLine(const std::function<void(const LineView &)> &fn) const
{
    for (const auto &set : sets) {
        for (const Line &line : set) {
            if (line.state == L1State::Invalid)
                continue;
            fn(LineView{line.block, line.state, line.hwSync});
        }
    }
}

} // namespace mem
} // namespace misar
