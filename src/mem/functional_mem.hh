/**
 * @file
 * Functional backing store and atomic-operation semantics.
 *
 * Timing is modeled by the coherence protocol; data lives here, in a
 * single global word-addressed store. Operations are applied at the
 * point a transaction completes, which the blocking directory
 * serializes per block, so values are always coherent.
 */

#ifndef MISAR_MEM_FUNCTIONAL_MEM_HH
#define MISAR_MEM_FUNCTIONAL_MEM_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace misar {
namespace mem {

/** Read-modify-write operations supported by the cores. */
enum class AtomicOp
{
    TestAndSet,  ///< old = M[a]; M[a] = 1; return old
    Swap,        ///< old = M[a]; M[a] = operand; return old
    FetchAdd,    ///< old = M[a]; M[a] = old + operand; return old
    CompareSwap, ///< old = M[a]; if (old == operand) M[a] = operand2
};

/** Global functional memory, 8-byte word granularity, zero-filled. */
class FunctionalMem
{
  public:
    std::uint64_t
    read(Addr a) const
    {
        auto it = words.find(wordAlign(a));
        return it == words.end() ? 0 : it->second;
    }

    void write(Addr a, std::uint64_t v) { words[wordAlign(a)] = v; }

    /** Apply @p op atomically; @return the old value. */
    std::uint64_t
    atomic(Addr a, AtomicOp op, std::uint64_t operand,
           std::uint64_t operand2 = 0)
    {
        std::uint64_t &w = words[wordAlign(a)];
        std::uint64_t old = w;
        switch (op) {
          case AtomicOp::TestAndSet:
            w = 1;
            break;
          case AtomicOp::Swap:
            w = operand;
            break;
          case AtomicOp::FetchAdd:
            w = old + operand;
            break;
          case AtomicOp::CompareSwap:
            if (old == operand)
                w = operand2;
            break;
        }
        return old;
    }

  private:
    static Addr wordAlign(Addr a) { return a & ~static_cast<Addr>(7); }

    std::unordered_map<Addr, std::uint64_t> words;
};

} // namespace mem
} // namespace misar

#endif // MISAR_MEM_FUNCTIONAL_MEM_HH
