/**
 * @file
 * Functional backing store and atomic-operation semantics.
 *
 * Timing is modeled by the coherence protocol; data lives here, in a
 * single global word-addressed store. Operations are applied at the
 * point a transaction completes, which the blocking directory
 * serializes per block, so values are always coherent.
 *
 * Thread safety: under the parallel kernel, partitions apply
 * operations to *different* words concurrently (same-word accesses
 * are still serialized by the directory, in simulated time). The
 * store is sharded by word address and, once enableLocking() is
 * called, each shard is mutex-guarded — commuting operations on
 * distinct words make the result independent of lock acquisition
 * order, so this does not perturb determinism. Serial runs never
 * touch the mutexes.
 */

#ifndef MISAR_MEM_FUNCTIONAL_MEM_HH
#define MISAR_MEM_FUNCTIONAL_MEM_HH

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "sim/types.hh"

namespace misar {
namespace mem {

/** Read-modify-write operations supported by the cores. */
enum class AtomicOp
{
    TestAndSet,  ///< old = M[a]; M[a] = 1; return old
    Swap,        ///< old = M[a]; M[a] = operand; return old
    FetchAdd,    ///< old = M[a]; M[a] = old + operand; return old
    CompareSwap, ///< old = M[a]; if (old == operand) M[a] = operand2
};

/** Global functional memory, 8-byte word granularity, zero-filled. */
class FunctionalMem
{
  public:
    std::uint64_t
    read(Addr a) const
    {
        const Shard &s = shardOf(a);
        if (!locking) {
            auto it = s.words.find(wordAlign(a));
            return it == s.words.end() ? 0 : it->second;
        }
        std::lock_guard<std::mutex> g(s.mtx);
        auto it = s.words.find(wordAlign(a));
        return it == s.words.end() ? 0 : it->second;
    }

    void
    write(Addr a, std::uint64_t v)
    {
        Shard &s = shardOf(a);
        if (!locking) {
            s.words[wordAlign(a)] = v;
            return;
        }
        std::lock_guard<std::mutex> g(s.mtx);
        s.words[wordAlign(a)] = v;
    }

    /** Apply @p op atomically; @return the old value. */
    std::uint64_t
    atomic(Addr a, AtomicOp op, std::uint64_t operand,
           std::uint64_t operand2 = 0)
    {
        Shard &s = shardOf(a);
        if (!locking)
            return applyAtomic(s, a, op, operand, operand2);
        std::lock_guard<std::mutex> g(s.mtx);
        return applyAtomic(s, a, op, operand, operand2);
    }

    /** Arm shard mutexes for a multi-threaded (PDES) run. */
    void enableLocking() { locking = true; }

  private:
    static constexpr std::size_t numShards = 64;

    struct Shard
    {
        std::unordered_map<Addr, std::uint64_t> words;
        mutable std::mutex mtx;
    };

    static Addr wordAlign(Addr a) { return a & ~static_cast<Addr>(7); }

    Shard &shardOf(Addr a) { return shards[(a >> 3) % numShards]; }
    const Shard &
    shardOf(Addr a) const
    {
        return shards[(a >> 3) % numShards];
    }

    static std::uint64_t
    applyAtomic(Shard &s, Addr a, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2)
    {
        std::uint64_t &w = s.words[wordAlign(a)];
        std::uint64_t old = w;
        switch (op) {
          case AtomicOp::TestAndSet:
            w = 1;
            break;
          case AtomicOp::Swap:
            w = operand;
            break;
          case AtomicOp::FetchAdd:
            w = old + operand;
            break;
          case AtomicOp::CompareSwap:
            if (old == operand)
                w = operand2;
            break;
        }
        return old;
    }

    std::array<Shard, numShards> shards;
    bool locking = false;
};

} // namespace mem
} // namespace misar

#endif // MISAR_MEM_FUNCTIONAL_MEM_HH
