/**
 * @file
 * Coherence protocol messages (MESI, blocking full-map directory).
 */

#ifndef MISAR_MEM_MSG_HH
#define MISAR_MEM_MSG_HH

#include "noc/packet.hh"
#include "sim/types.hh"

namespace misar {
namespace mem {

/** Coherence message opcodes. */
enum class MemOp
{
    // L1 -> home (requests, vnet 0)
    GetS,    ///< read miss
    GetM,    ///< write/atomic miss or upgrade
    PutM,    ///< dirty eviction (fire-and-forget, data)
    PutE,    ///< clean-exclusive eviction notification
    // home -> L1 (forwards, vnet 0)
    FwdGetS, ///< downgrade owner to S
    Inv,     ///< invalidate (sharer or owner)
    BackInv, ///< LLC eviction back-invalidation (no ack expected)
    // L1 -> home (responses, vnet 1)
    FwdAck,  ///< response to FwdGetS
    InvAck,  ///< response to Inv
    // home -> L1 (grants, vnet 1, data-sized)
    DataS,   ///< read data, shared
    DataE,   ///< read data, exclusive clean
    DataM,   ///< write grant with data
    GrantM,  ///< upgrade grant, no data needed
    // home -> L1 (push-install for MSA lock grants, vnet 1)
    InstallE,
};

/** True for messages that carry a cache block. */
inline bool
carriesData(MemOp op)
{
    return op == MemOp::PutM || op == MemOp::DataS || op == MemOp::DataE ||
           op == MemOp::DataM || op == MemOp::InstallE;
}

/** One coherence message. */
class MemMsg : public noc::Packet
{
  public:
    MemMsg(CoreId src, CoreId dst, MemOp op, Addr block)
        : Packet(src, dst,
                 carriesData(op) ? noc::dataBytes : noc::ctrlBytes),
          op(op), block(block)
    {
        // Requests/forwards travel on vnet 0; acks/grants on vnet 1.
        vnet = (op == MemOp::GetS || op == MemOp::GetM ||
                op == MemOp::FwdGetS || op == MemOp::Inv ||
                op == MemOp::BackInv) ? 0u : 1u;
    }

    MemOp op;
    Addr block;
    /** For InstallE: set the HWSync bit on installation (MSA §5). */
    bool hwSync = false;
};

/** Home tile of a block: line-interleaved across all tiles. */
inline CoreId
homeTile(Addr block, unsigned num_tiles)
{
    return static_cast<CoreId>((block / blockBytes) % num_tiles);
}

} // namespace mem
} // namespace misar

#endif // MISAR_MEM_MSG_HH
