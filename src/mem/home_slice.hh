/**
 * @file
 * Home tile of the shared LLC: one slice of cache + full-map
 * directory per tile, blocking (one transaction per block).
 *
 * The slice has finite, set-associative capacity: the first touch of
 * a block pays DRAM latency, later touches pay LLC latency, and
 * filling a set evicts an LRU victim (back-invalidating any shared
 * L1 copies). Exclusively-owned lines are never evicted — their
 * authoritative copy lives in an L1 and evicting the directory entry
 * would orphan it; a set whose ways are all owned simply overflows
 * (counted in stats), which real directory caches handle the same
 * way via escape mechanisms.
 */

#ifndef MISAR_MEM_HOME_SLICE_HH
#define MISAR_MEM_HOME_SLICE_HH

#include <bitset>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "mem/msg.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misar {
namespace mem {

/**
 * Upper bound on hardware threads supported by the directory sharer
 * vector and the MSA wait-queue bitsets. Sized for the msa1024
 * scale-study mesh; loops over these bitsets iterate the configured
 * core count, not the capacity, so small meshes only pay the larger
 * per-entry footprint.
 */
constexpr unsigned maxCores = 1024;

/**
 * Directory + LLC slice for the blocks homed at one tile.
 *
 * All transactions for a block serialize through its entry's busy
 * flag; requests arriving while busy queue in order. The MSA uses
 * grantExclusive() to push a lock block into the new owner's L1 in
 * E state with the HWSync bit (paper §5).
 */
class HomeSlice
{
  public:
    using SendFn = std::function<void(std::shared_ptr<MemMsg>)>;

    HomeSlice(EventQueue &eq, const MemConfig &cfg, CoreId tile,
              unsigned num_tiles, SendFn send, StatRegistry &stats);

    /** Incoming coherence message from the NoC. */
    void handleMessage(std::shared_ptr<MemMsg> msg);

    /**
     * MiSAR lock-grant path: make @p to the exclusive owner of
     * @p block (invalidating everyone else), push the block into its
     * L1 via InstallE with @p hw_sync, then invoke @p done.
     */
    void grantExclusive(Addr block, CoreId to, bool hw_sync,
                        std::function<void()> done);

    /** Directory state probe for tests. */
    bool isOwner(Addr block, CoreId c) const;
    bool isSharer(Addr block, CoreId c) const;

    /** Read-only directory view for the invariant checker. */
    struct DirView
    {
        Addr block;
        bool exclusive; ///< directory state is Exclusive
        bool shared;    ///< directory state is Shared
        CoreId owner;
        bool busy;
    };

    /** Visit every directory entry (invariant checker / debug). */
    void forEachEntry(const std::function<void(const DirView &)> &fn) const;

  private:
    enum class DState : std::uint8_t { Uncached, Shared, Exclusive };

    struct Job
    {
        // Either a coherence request or an MSA exclusive grant.
        std::shared_ptr<MemMsg> msg;
        // Grant fields (msg == nullptr):
        Addr block = invalidAddr;
        CoreId grantTo = invalidCore;
        bool hwSync = false;
        std::function<void()> done;
    };

    struct Entry
    {
        DState state = DState::Uncached;
        std::bitset<maxCores> sharers;
        CoreId owner = invalidCore;
        bool cold = true;
        bool busy = false;
        unsigned pendingAcks = 0;
        /**
         * Puts from the current owner that are known to be in flight
         * because we re-granted the block to a core that (from our
         * view) still owned it — its eviction notice had not arrived
         * yet. Those puts must be dropped, not processed (puts ride
         * the reply vnet and can overtake the re-request).
         */
        unsigned pendingStalePuts = 0;
        /** Continuation run when pendingAcks reaches zero. */
        std::function<void()> onAcked;
        std::deque<Job> queue;
        /** LRU timestamp for set-capacity victim selection. */
        Tick lastTouch = 0;
    };

    /** Set index of @p block within this slice. */
    unsigned setOf(Addr block) const;

    /** Find-or-create, enforcing set capacity on creation. */
    Entry &entry(Addr block);

    /** Find-only; nullptr when the block has no directory entry. */
    Entry *findEntry(Addr block);

    /** Evict an eligible LRU victim from @p set, if any. */
    void enforceCapacity(unsigned set);

    /** Begin @p job now if the entry is idle, else queue it. */
    void submit(Addr block, Job job);

    /** Charge tag/DRAM latency, then run the job body. */
    void start(Addr block, Job job);

    void doRequest(Addr block, const std::shared_ptr<MemMsg> &msg);
    void doGrant(Addr block, Job job);
    void doPut(Addr block, const std::shared_ptr<MemMsg> &msg);

    /** Transaction finished: unbusy and start the next queued job. */
    void finish(Addr block);

    void sendMsg(CoreId dst, MemOp op, Addr block, bool hw_sync = false);

    EventQueue &eq;
    const MemConfig &cfg;
    CoreId tile;
    unsigned numTiles;
    SendFn send;
    StatRegistry &stats;
    std::string statPrefix;

    std::unordered_map<Addr, Entry> entries;
    /** Resident block addresses per set (capacity bookkeeping). */
    std::unordered_map<unsigned, std::vector<Addr>> setResidents;
};

} // namespace mem
} // namespace misar

#endif // MISAR_MEM_HOME_SLICE_HH
