/**
 * @file
 * Multi-component simulation tracer.
 *
 * Extends the per-core operation timelines (sim/trace.hh) to every
 * other component of the chip: MSA slice activity (allocations,
 * overflows, sheds, aborts, OMU counter transitions), NoC packet
 * delivery, and — most importantly — Chrome trace *flow events* that
 * stitch one synchronization operation end-to-end across components
 * (core issues LOCK -> request packet crosses the mesh -> slice
 * decides -> response -> core resumes).
 *
 * The exported file is Chrome trace-event JSON ("catapult" format),
 * viewable in https://ui.perfetto.dev or chrome://tracing. Rows are
 * grouped by process: pid 0 = cores, pid 1 = MSA slices, pid 2 = NoC
 * interfaces; process_name / thread_name metadata labels every row.
 *
 * All recording is gated on construction: components hold a Tracer
 * pointer that is null when tracing is off, so a disabled build does
 * no work and schedules stay bit-identical.
 */

#ifndef MISAR_OBS_TRACER_HH
#define MISAR_OBS_TRACER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace misar {
namespace obs {

/** Well-known process ids for the trace's row grouping. */
constexpr unsigned pidCores = 0;
constexpr unsigned pidMsa = 1;
constexpr unsigned pidNoc = 2;

/** Identifier of one trace row (returned by Tracer::addTrack). */
using TrackId = unsigned;

/** Phase of a cross-component flow (Chrome "s"/"t"/"f" events). */
enum class FlowPhase : std::uint8_t { Start, Step, End };

/** Central trace recorder for everything that is not a core op. */
class Tracer
{
  public:
    /**
     * @param stats   registry that receives the "trace.droppedEvents"
     *                counter when events are discarded.
     * @param max_events_per_track  growth bound per track; events
     *                beyond it are dropped (and counted), so tracing
     *                a long run cannot exhaust memory.
     */
    Tracer(StatRegistry &stats, std::size_t max_events_per_track);

    /** Register a trace row. @p name labels it in the viewer. */
    TrackId addTrack(unsigned pid, unsigned tid, std::string name);

    /** A completed [start, end) interval (Chrome "X" event). */
    void complete(TrackId t, Tick start, Tick end, const char *name,
                  Addr addr = 0);

    /** A point event (Chrome "i" instant), with an optional value
     *  rendered into args (e.g. an OMU counter's new count). */
    void instant(TrackId t, Tick ts, const char *name, Addr addr = 0,
                 std::uint64_t value = 0, bool has_value = false);

    /** One phase of flow @p id (Chrome "s"/"t"/"f" events). */
    void flow(TrackId t, FlowPhase ph, std::uint64_t id, Tick ts,
              Addr addr = 0);

    /**
     * A counter sample (Chrome "C" event): the viewer renders one
     * stacked area chart per (pid, name). @p name must outlive the
     * tracer (the resource monitor owns its gauge names).
     */
    void counter(TrackId t, Tick ts, const char *name,
                 std::uint64_t value);

    /** Allocate a fresh, never-zero flow id. */
    std::uint64_t newFlowId() { return ++lastFlowId; }

    /** Events discarded across all tracks because a cap was hit. */
    std::uint64_t dropped() const;

    /**
     * Write the full Chrome trace: metadata, @p core_bufs as pid 0
     * rows (one per hardware thread), then every registered track.
     */
    void write(std::ostream &os,
               const std::vector<const TraceBuffer *> &core_bufs) const;

  private:
    struct Ev
    {
        Tick ts;
        Tick dur;
        const char *name;
        Addr addr;
        std::uint64_t id; ///< flow id, or instant value
        enum Kind : std::uint8_t
        {
            Complete,
            Instant,
            FlowStart,
            FlowStep,
            FlowEnd,
            Counter,
        } kind;
        bool hasValue;
    };

    struct Track
    {
        unsigned pid;
        unsigned tid;
        std::string name;
        std::vector<Ev> events;
    };

    bool push(TrackId t, Ev ev);
    void writeEvent(std::ostream &os, const Track &tr, const Ev &e) const;

    StatRegistry &stats;
    std::size_t maxEventsPerTrack;
    std::vector<Track> tracks;
    std::uint64_t lastFlowId = 0;
    std::uint64_t _dropped = 0;
};

} // namespace obs
} // namespace misar

#endif // MISAR_OBS_TRACER_HH
