#include "obs/sync_profiler.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "sim/trace.hh"
#include "util/json.hh"

namespace misar {
namespace obs {

namespace {

bool
isAcquire(cpu::SyncInstr k)
{
    switch (k) {
      case cpu::SyncInstr::Lock:
      case cpu::SyncInstr::TryLock:
      case cpu::SyncInstr::RdLock:
      case cpu::SyncInstr::WrLock:
        return true;
      default:
        return false;
    }
}

bool
isRelease(cpu::SyncInstr k)
{
    return k == cpu::SyncInstr::Unlock || k == cpu::SyncInstr::RwUnlock;
}

} // namespace

SyncVarStats &
SyncProfiler::at(Addr a, cpu::SyncInstr kind)
{
    SyncVarStats &v = vars[a];
    if (v.addr == invalidAddr)
        v.addr = a;
    v.kind = kind;
    return v;
}

void
SyncProfiler::onComplete(CoreId core, const cpu::Op &op, cpu::SyncResult r,
                         Tick issued_at, Tick now)
{
    if (op.instr == cpu::SyncInstr::Finish)
        return; // bookkeeping, not synchronization
    SyncVarStats &v = at(op.addr, op.instr);
    ++v.ops;
    if (r == cpu::SyncResult::Abort)
        ++v.aborts;

    const bool waited = isAcquire(op.instr) ||
                        op.instr == cpu::SyncInstr::Barrier ||
                        op.instr == cpu::SyncInstr::CondWait;
    if (waited) {
        const Tick w = now - issued_at;
        v.wait.sample(static_cast<double>(w));
        v.waitHist.record(w);
        allWait.record(w);
    }
    if (isAcquire(op.instr)) {
        // Success/Busy were performed by hardware; Fail routes the op
        // to the software fallback; Abort kicked it there mid-flight.
        if (r == cpu::SyncResult::Success) {
            ++v.hwAcquires;
            holdStart[{core, op.addr}] = now;
        } else if (r == cpu::SyncResult::Busy) {
            ++v.hwAcquires;
        } else {
            ++v.swAcquires;
        }
    }
    if (isRelease(op.instr) && r == cpu::SyncResult::Success) {
        auto it = holdStart.find({core, op.addr});
        if (it != holdStart.end()) {
            v.hold.sample(static_cast<double>(now - it->second));
            holdStart.erase(it);
        }
    }
}

void
SyncProfiler::onSilentAcquire(CoreId core, Addr a, Tick now)
{
    SyncVarStats &v = at(a, cpu::SyncInstr::Lock);
    ++v.ops;
    ++v.hwAcquires;
    ++v.silentAcquires;
    v.wait.sample(0.0);
    v.waitHist.record(0);
    allWait.record(0);
    holdStart[{core, a}] = now;
}

void
SyncProfiler::onHwRelease(CoreId core, Addr a, Tick now)
{
    SyncVarStats &v = at(a, cpu::SyncInstr::Unlock);
    ++v.ops;
    auto it = holdStart.find({core, a});
    if (it != holdStart.end()) {
        v.hold.sample(static_cast<double>(now - it->second));
        holdStart.erase(it);
    }
}

void
SyncProfiler::onGrant(Addr a, CoreId core)
{
    SyncVarStats &v = at(a, cpu::SyncInstr::Lock);
    auto it = lastGrantee.find(a);
    if (it != lastGrantee.end()) {
        if (it->second == core)
            ++v.reacquires;
        else
            ++v.handoffs;
    }
    lastGrantee[a] = core;
}

void
SyncProfiler::onBarrierArrive(Addr a, Tick now)
{
    episodeStart.emplace(a, now); // keeps the first arrival's tick
}

void
SyncProfiler::onBarrierRelease(Addr a, Tick now)
{
    auto it = episodeStart.find(a);
    if (it == episodeStart.end())
        return;
    at(a, cpu::SyncInstr::Barrier)
        .barrierEpisode.sample(static_cast<double>(now - it->second));
    episodeStart.erase(it);
}

const SyncVarStats *
SyncProfiler::var(Addr a) const
{
    auto it = vars.find(a);
    return it == vars.end() ? nullptr : &it->second;
}

std::vector<const SyncVarStats *>
SyncProfiler::hottest(std::size_t top_n) const
{
    std::vector<const SyncVarStats *> v;
    v.reserve(vars.size());
    for (const auto &[a, s] : vars)
        v.push_back(&s);
    std::sort(v.begin(), v.end(),
              [](const SyncVarStats *a, const SyncVarStats *b) {
                  if (a->contention() != b->contention())
                      return a->contention() > b->contention();
                  if (a->ops != b->ops)
                      return a->ops > b->ops;
                  return a->addr < b->addr; // deterministic ties
              });
    if (v.size() > top_n)
        v.resize(top_n);
    return v;
}

void
SyncProfiler::writeReport(std::ostream &os, std::size_t top_n) const
{
    os << "=== hottest sync variables (top " << top_n << " of "
       << vars.size() << ", by total wait) ===\n";
    os << std::left << std::setw(12) << "addr" << std::right
       << std::setw(8) << "ops" << std::setw(8) << "hw" << std::setw(8)
       << "sw" << std::setw(8) << "silent" << std::setw(9) << "handoff"
       << std::setw(8) << "reacq" << std::setw(12) << "waitSum"
       << std::setw(10) << "waitMean" << std::setw(10) << "holdMean"
       << std::setw(10) << "barrMean" << std::setw(7) << "abort"
       << "\n";
    for (const SyncVarStats *v : hottest(top_n)) {
        std::ostringstream a;
        a << "0x" << std::hex << v->addr;
        os << std::left << std::setw(12) << a.str() << std::right
           << std::setw(8) << v->ops << std::setw(8) << v->hwAcquires
           << std::setw(8) << v->swAcquires << std::setw(8)
           << v->silentAcquires << std::setw(9) << v->handoffs
           << std::setw(8) << v->reacquires << std::setw(12) << std::fixed
           << std::setprecision(0) << v->wait.sum() << std::setw(10)
           << std::setprecision(1) << v->wait.mean() << std::setw(10)
           << v->hold.mean() << std::setw(10) << v->barrierEpisode.mean()
           << std::setw(7) << v->aborts << "\n";
    }
}

void
SyncProfiler::writeJson(std::ostream &os, std::size_t top_n) const
{
    util::JsonWriter w(os);
    w.beginArray();
    for (const SyncVarStats *v : hottest(top_n)) {
        char addr[32];
        std::snprintf(addr, sizeof(addr), "0x%llx",
                      (unsigned long long)v->addr);
        w.beginObject();
        w.kv("addr", addr);
        w.kv("kind", cpu::syncInstrName(v->kind));
        w.kv("ops", v->ops);
        w.kv("hwAcquires", v->hwAcquires);
        w.kv("swAcquires", v->swAcquires);
        w.kv("silentAcquires", v->silentAcquires);
        w.kv("aborts", v->aborts);
        w.kv("handoffs", v->handoffs);
        w.kv("reacquires", v->reacquires);
        w.key("wait").beginObject();
        w.kv("sum", v->wait.sum(), 1);
        w.kv("mean", v->wait.mean(), 1);
        w.kv("max", v->wait.max(), 1);
        w.kv("count", std::uint64_t(v->wait.count()));
        w.kv("p50", v->waitHist.p50());
        w.kv("p99", v->waitHist.p99());
        w.key("hist");
        v->waitHist.writeJson(w);
        w.endObject();
        w.key("hold").beginObject();
        w.kv("mean", v->hold.mean(), 1);
        w.kv("count", std::uint64_t(v->hold.count()));
        w.endObject();
        w.key("barrierEpisode").beginObject();
        w.kv("mean", v->barrierEpisode.mean(), 1);
        w.kv("max", v->barrierEpisode.max(), 1);
        w.kv("count", std::uint64_t(v->barrierEpisode.count()));
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

} // namespace obs
} // namespace misar
