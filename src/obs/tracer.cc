#include "obs/tracer.hh"

#include <set>

#include "sim/logging.hh"

namespace misar {
namespace obs {

Tracer::Tracer(StatRegistry &stats, std::size_t max_events_per_track)
    : stats(stats), maxEventsPerTrack(max_events_per_track)
{}

TrackId
Tracer::addTrack(unsigned pid, unsigned tid, std::string name)
{
    tracks.push_back(Track{pid, tid, std::move(name), {}});
    return static_cast<TrackId>(tracks.size() - 1);
}

bool
Tracer::push(TrackId t, Ev ev)
{
    Track &tr = tracks.at(t);
    if (tr.events.size() >= maxEventsPerTrack) {
        ++_dropped;
        stats.counter("trace.droppedEvents").inc();
        return false;
    }
    tr.events.push_back(ev);
    return true;
}

void
Tracer::complete(TrackId t, Tick start, Tick end, const char *name,
                 Addr addr)
{
    push(t, Ev{start, end - start, name, addr, 0, Ev::Complete, false});
}

void
Tracer::instant(TrackId t, Tick ts, const char *name, Addr addr,
                std::uint64_t value, bool has_value)
{
    push(t, Ev{ts, 0, name, addr, value, Ev::Instant, has_value});
}

void
Tracer::flow(TrackId t, FlowPhase ph, std::uint64_t id, Tick ts, Addr addr)
{
    Ev::Kind k = ph == FlowPhase::Start  ? Ev::FlowStart
                 : ph == FlowPhase::Step ? Ev::FlowStep
                                         : Ev::FlowEnd;
    push(t, Ev{ts, 0, "sync", addr, id, k, false});
}

void
Tracer::counter(TrackId t, Tick ts, const char *name, std::uint64_t value)
{
    push(t, Ev{ts, 0, name, 0, value, Ev::Counter, true});
}

std::uint64_t
Tracer::dropped() const
{
    return _dropped;
}

void
Tracer::writeEvent(std::ostream &os, const Track &tr, const Ev &e) const
{
    const char *ph = nullptr;
    switch (e.kind) {
      case Ev::Complete:
        ph = "X";
        break;
      case Ev::Instant:
        ph = "i";
        break;
      case Ev::FlowStart:
        ph = "s";
        break;
      case Ev::FlowStep:
        ph = "t";
        break;
      case Ev::FlowEnd:
        ph = "f";
        break;
      case Ev::Counter:
        ph = "C";
        break;
    }
    os << "{\"ph\":\"" << ph << "\",\"pid\":" << tr.pid
       << ",\"tid\":" << tr.tid << ",\"ts\":" << e.ts;
    if (e.kind == Ev::Complete)
        os << ",\"dur\":" << e.dur;
    if (e.kind == Ev::Instant)
        os << ",\"s\":\"t\"";
    if (e.kind == Ev::FlowStart || e.kind == Ev::FlowStep ||
        e.kind == Ev::FlowEnd) {
        os << ",\"cat\":\"sync\",\"id\":" << e.id;
        if (e.kind == Ev::FlowEnd)
            os << ",\"bp\":\"e\"";
    }
    os << ",\"name\":\"" << jsonEscape(e.name ? e.name : "") << "\"";
    if (e.addr || e.hasValue) {
        os << ",\"args\":{";
        bool first = true;
        if (e.addr) {
            os << "\"addr\":\"0x" << std::hex << e.addr << std::dec
               << "\"";
            first = false;
        }
        if (e.hasValue)
            os << (first ? "" : ",") << "\"value\":" << e.id;
        os << "}";
    }
    os << "}";
}

void
Tracer::write(std::ostream &os,
              const std::vector<const TraceBuffer *> &core_bufs) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
    };

    // --- metadata: process names (one per pid) and thread names ---
    std::set<unsigned> pids_named;
    auto process_name = [&](unsigned pid, const char *name) {
        if (!pids_named.insert(pid).second)
            return;
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
           << jsonEscape(name) << "\"}}";
    };
    auto thread_name = [&](unsigned pid, unsigned tid,
                           const std::string &name) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(name) << "\"}}";
    };

    process_name(pidCores, "cores");
    for (std::size_t c = 0; c < core_bufs.size(); ++c)
        if (core_bufs[c])
            thread_name(pidCores, static_cast<unsigned>(c),
                        "core " + std::to_string(c));
    for (const Track &tr : tracks) {
        switch (tr.pid) {
          case pidMsa:
            process_name(pidMsa, "msa slices");
            break;
          case pidNoc:
            process_name(pidNoc, "noc");
            break;
          default:
            break;
        }
        // Core-pid tracks reuse the per-core thread names above.
        if (tr.pid != pidCores)
            thread_name(tr.pid, tr.tid, tr.name);
    }

    // --- core op timelines (pid 0) ---
    for (std::size_t tid = 0; tid < core_bufs.size(); ++tid) {
        if (!core_bufs[tid])
            continue;
        for (const TraceEvent &e : core_bufs[tid]->data()) {
            sep();
            os << "{\"ph\":\"X\",\"pid\":" << pidCores
               << ",\"tid\":" << tid << ",\"ts\":" << e.start
               << ",\"dur\":" << (e.end - e.start) << ",\"name\":\""
               << jsonEscape(e.name ? e.name : "") << "\"";
            if (e.addr)
                os << ",\"args\":{\"addr\":\"0x" << std::hex << e.addr
                   << std::dec << "\"}";
            os << "}";
        }
    }

    // --- everything else ---
    for (const Track &tr : tracks) {
        for (const Ev &e : tr.events) {
            sep();
            writeEvent(os, tr, e);
        }
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace obs
} // namespace misar
