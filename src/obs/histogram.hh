/**
 * @file
 * Log-bucketed latency histogram (HDR-histogram style).
 *
 * The repo needs percentile-grade latency evidence — sync-op wait
 * distributions per variable, per run, and merged across campaign
 * repetitions — with a hard accuracy bound and deterministic byte
 * encoding. LogHistogram records 64-bit tick values exactly below
 * 128 and with 64 sub-buckets per power of two above, which bounds
 * the relative quantization error of any reconstructed value by
 * 1/128 (~0.78%, under the 1% budget): a value v >= 128 lands in a
 * bucket of width 2^s whose lower bound is at least 64*2^s, and we
 * report the bucket midpoint.
 *
 * Histograms merge by bucket-wise addition, so the merge of per-rep
 * histograms is bit-identical to the histogram of the concatenated
 * sample stream — the property campaign aggregation relies on.
 * Buckets are stored densely up to the largest observed index
 * (30 KB worst case for full 64-bit range, ~1 KB for realistic wait
 * times) and encoded sparsely in JSON as [[index,count],...].
 */

#ifndef MISAR_OBS_HISTOGRAM_HH
#define MISAR_OBS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace misar {
namespace util {
struct Json;
class JsonWriter;
} // namespace util

namespace obs {

class LogHistogram
{
  public:
    /** Sub-buckets per power-of-two range (64 -> error <= 1/128). */
    static constexpr unsigned subBuckets = 64;
    /** Values below this are bucketed exactly (index == value). */
    static constexpr std::uint64_t exactLimit = 128;

    /** Bucket index for @p v (stable across runs and platforms). */
    static unsigned bucketIndex(std::uint64_t v);

    /** Midpoint of bucket @p idx: the value reported for it. */
    static std::uint64_t bucketValue(unsigned idx);

    /** Inclusive lower bound of bucket @p idx. */
    static std::uint64_t bucketLow(unsigned idx);

    void record(std::uint64_t v) { record(v, 1); }
    void record(std::uint64_t v, std::uint64_t n);

    /** Bucket-wise addition; count/sum/min/max merge too. */
    void merge(const LogHistogram &other);

    std::uint64_t count() const { return total; }
    std::uint64_t sum() const { return accum; }
    std::uint64_t min() const { return total ? lo : 0; }
    std::uint64_t max() const { return hi; }
    double mean() const { return total ? double(accum) / double(total) : 0.0; }
    bool empty() const { return total == 0; }

    /**
     * Value at quantile @p q in [0,1]: the midpoint of the bucket
     * holding the ceil(q*count)-th smallest sample (exact for values
     * below exactLimit). 0 on an empty histogram.
     */
    std::uint64_t percentile(double q) const;

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p90() const { return percentile(0.90); }
    std::uint64_t p99() const { return percentile(0.99); }
    std::uint64_t p999() const { return percentile(0.999); }

    /** Raw bucket counts (dense, trailing zeros trimmed at resize). */
    const std::vector<std::uint64_t> &bucketCounts() const { return counts; }

    /**
     * Emit {"count":..,"sum":..,"min":..,"max":..,
     * "buckets":[[idx,count],...]} as the next value of @p w.
     */
    void writeJson(util::JsonWriter &w) const;

    /** Rebuild from a writeJson() document. False on malformed input. */
    static bool fromJson(const util::Json &j, LogHistogram &out);

    bool operator==(const LogHistogram &o) const;

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t accum = 0;
    std::uint64_t lo = ~0ULL;
    std::uint64_t hi = 0;
};

} // namespace obs
} // namespace misar

#endif // MISAR_OBS_HISTOGRAM_HH
