#include "obs/heatmap.hh"

#include "obs/tracer.hh"
#include "util/json.hh"

namespace misar {
namespace obs {

void
ResourceMonitor::addGauge(std::string name, std::string kind, unsigned pid,
                          unsigned tid, std::function<double()> fn)
{
    Gauge g;
    g.name = std::move(name);
    g.kind = std::move(kind);
    g.pid = pid;
    g.tid = tid;
    g.fn = std::move(fn);
    if (tracer)
        g.track = static_cast<int>(tracer->addTrack(g.pid, g.tid, g.name));
    gauges.push_back(std::move(g));
}

void
ResourceMonitor::attachTracer(Tracer *t)
{
    tracer = t;
    if (!tracer)
        return;
    for (Gauge &g : gauges)
        if (g.track < 0)
            g.track = static_cast<int>(
                tracer->addTrack(g.pid, g.tid, g.name));
}

void
ResourceMonitor::sample(Tick now)
{
    if (ticks.size() >= maxRows) {
        ++_droppedRows;
        return;
    }
    ticks.push_back(now);
    for (Gauge &g : gauges) {
        double v = g.fn();
        g.values.push_back(v);
        if (tracer && g.track >= 0)
            tracer->counter(static_cast<TrackId>(g.track), now,
                            g.name.c_str(),
                            v < 0 ? 0 : static_cast<std::uint64_t>(v));
    }
}

ResourceMonitor::TileState &
ResourceMonitor::tileState(unsigned tile)
{
    if (tile >= tiles.size())
        tiles.resize(tile + 1);
    return tiles[tile];
}

void
ResourceMonitor::onOverflow(unsigned tile, Tick now)
{
    (void)tile;
    (void)now;
    ++_overflowEvents;
}

void
ResourceMonitor::omuUpdate(unsigned tile, unsigned active_counters,
                           std::uint32_t count, Tick now)
{
    TileState &t = tileState(tile);
    if (count > t.highWater)
        t.highWater = count;
    if (t.active == 0 && active_counters > 0) {
        t.openEpisode = static_cast<std::int64_t>(episodes.size());
        episodes.push_back(Episode{tile, now, now, false});
    } else if (t.active > 0 && active_counters == 0 &&
               t.openEpisode >= 0) {
        Episode &e = episodes[static_cast<std::size_t>(t.openEpisode)];
        e.end = now;
        e.closed = true;
        t.openEpisode = -1;
    }
    t.active = active_counters;
}

void
ResourceMonitor::finalize(Tick now)
{
    if (finalized)
        return;
    finalized = true;
    for (TileState &t : tiles) {
        if (t.openEpisode < 0)
            continue;
        Episode &e = episodes[static_cast<std::size_t>(t.openEpisode)];
        e.end = now;
        t.openEpisode = -1;
    }
}

std::uint64_t
ResourceMonitor::omuHighWater() const
{
    std::uint64_t hwm = 0;
    for (const TileState &t : tiles)
        if (t.highWater > hwm)
            hwm = t.highWater;
    return hwm;
}

const std::vector<double> &
ResourceMonitor::gaugeValues(std::size_t g) const
{
    return gauges.at(g).values;
}

const std::string &
ResourceMonitor::gaugeName(std::size_t g) const
{
    return gauges.at(g).name;
}

const std::string &
ResourceMonitor::gaugeKind(std::size_t g) const
{
    return gauges.at(g).kind;
}

double
ResourceMonitor::maxOfKind(const std::string &kind) const
{
    double mx = 0.0;
    for (const Gauge &g : gauges) {
        if (g.kind != kind)
            continue;
        for (double v : g.values)
            if (v > mx)
                mx = v;
    }
    return mx;
}

std::uint64_t
ResourceMonitor::omuEpisodeTicks() const
{
    std::uint64_t total = 0;
    for (const Episode &e : episodes)
        total += e.end - e.begin;
    return total;
}

void
ResourceMonitor::writeJson(std::ostream &os) const
{
    util::JsonWriter w(os);
    w.beginObject();
    w.kv("schemaVersion", std::uint64_t(1));
    w.kv("interval", _interval);
    w.kv("droppedRows", _droppedRows);
    w.key("ticks").beginArray();
    for (Tick t : ticks)
        w.value(t);
    w.endArray();
    w.key("resources").beginArray();
    for (const Gauge &g : gauges) {
        w.newline().beginObject();
        w.kv("name", g.name);
        w.kv("kind", g.kind);
        w.key("values").beginArray();
        for (double v : g.values)
            w.value(v, 3);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("omuEpisodes").beginArray();
    for (const Episode &e : episodes) {
        w.beginObject();
        w.kv("tile", e.tile);
        w.kv("begin", e.begin);
        w.kv("end", e.end);
        w.kv("closed", e.closed);
        w.endObject();
    }
    w.endArray();
    w.key("omuHighWater").beginArray();
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        w.beginObject();
        w.kv("tile", std::uint64_t(t));
        w.kv("max", std::uint64_t(tiles[t].highWater));
        w.endObject();
    }
    w.endArray();
    w.kv("overflowEvents", _overflowEvents);
    w.endObject();
    w.newline();
}

void
ResourceMonitor::writeSummaryJson(util::JsonWriter &w) const
{
    w.beginObject();
    w.kv("interval", _interval);
    w.kv("resources", std::uint64_t(gauges.size()));
    w.kv("samples", std::uint64_t(ticks.size()));
    w.kv("overflowEvents", _overflowEvents);
    w.kv("omuEpisodes", std::uint64_t(episodes.size()));
    w.kv("omuEpisodeTicks", omuEpisodeTicks());
    w.kv("omuHighWater", omuHighWater());
    w.kv("maxSliceOccupancy", maxOfKind("msaOccupancy"), 3);
    w.kv("maxNiQueueDepth", maxOfKind("niQueue"), 3);
    w.endObject();
}

} // namespace obs
} // namespace misar
