/**
 * @file
 * Machine-readable run report.
 *
 * One JSON document per simulation run: run metadata (configuration,
 * seed, termination reason), a resilience summary (PR 1's timeout /
 * retry / abort / offline-shed counters, so faulted runs diff
 * cleanly), the full StatRegistry, and the sync-variable contention
 * profile when the profiler ran. Schema documented in
 * docs/OBSERVABILITY.md.
 */

#ifndef MISAR_OBS_RUN_REPORT_HH
#define MISAR_OBS_RUN_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "srv/server_stats.hh"

namespace misar {

class EventQueue;

namespace sys {
class System;
} // namespace sys

namespace obs {

class SyncProfiler;
class StatSampler;
class ResourceMonitor;

/**
 * Report schema version ("schemaVersion" in the JSON).
 *
 * v4 (this version) is a strict superset of v3, which was a strict
 * superset of v2 and v1: every earlier field is still present with
 * the same type and meaning. New in v2: the "latency" block
 * (log-bucketed run-level sync-wait histogram, see obs/histogram.hh)
 * whenever the profiler ran, and the "heatmap" resource-pressure
 * summary when the monitor ran. New in v3: the "server" block
 * (request accounting, throughput, p50/p99/p999 request latency, and
 * the saturation-knee flag) when the run was an open- or closed-loop
 * server workload. New in v4, inside "server": "rejectedSlo" and
 * "goodput" always, plus the "slo" block (ticks, met) when an SLO was
 * set, the "retries" block (policy, attempts, budgetDenied) when a
 * retry policy was armed, and the "tenants" array (per-tenant
 * accounting + latency) for two-tenant runs.
 */
constexpr unsigned runReportSchemaVersion = 4;

/** Run metadata block of the report. */
struct RunMeta
{
    std::string app;    ///< workload name ("" outside app harnesses)
    std::string preset; ///< harness configuration name (CLI/preset)
    std::string accel;  ///< SystemConfig::accelName()
    std::string flavor; ///< sync library flavor name
    unsigned cores = 0;
    unsigned smtWays = 1;
    unsigned msaEntries = 0;
    unsigned omuCounters = 0;
    bool omuEnabled = true;
    bool hwSyncBitOpt = true;
    std::uint64_t seed = 0;
    /** runDetailed outcome: Finished | Deadlock | LimitReached. */
    std::string outcome;
    Tick makespan = 0;
    double hwCoverage = 0.0;
};

/**
 * Write the JSON run report. @p prof adds the "syncVars" top-N array
 * (pass the profiler's top-N as @p top_n); null omits the section.
 * @p sampler embeds the time-series row count + interval (the rows
 * themselves go to CSV, not the report). @p eq adds an "eventQueue"
 * block with the kernel's host-side allocation counters (event-pool
 * stats live here and not in the StatRegistry so the registry stays
 * comparable across kernel implementations). @p monitor embeds the
 * "heatmap" resource-pressure summary (the full matrix goes to
 * heatmap.json, not the report). @p server adds the "server" block
 * of an open-/closed-loop server run (request accounting, throughput,
 * tail latency, saturation-knee flag).
 */
void writeRunReport(std::ostream &os, const RunMeta &meta,
                    const StatRegistry &stats,
                    const SyncProfiler *prof = nullptr,
                    std::size_t top_n = 16,
                    const StatSampler *sampler = nullptr,
                    const EventQueue *eq = nullptr,
                    const ResourceMonitor *monitor = nullptr,
                    const srv::ServerStats *server = nullptr);

/**
 * Write the report to @p path durably: the bytes are fully written
 * and fsync'd before returning, so the file survives an immediately
 * following abort()/_exit(). Campaign workers rely on this — a job
 * that panics right after (or during, via CrashReportGuard) still
 * leaves an ingestible report. Returns false (with a warning) on
 * I/O errors.
 */
bool writeRunReportDurable(const std::string &path, const RunMeta &meta,
                           const StatRegistry &stats,
                           const SyncProfiler *prof = nullptr,
                           std::size_t top_n = 16,
                           const StatSampler *sampler = nullptr,
                           const EventQueue *eq = nullptr,
                           const ResourceMonitor *monitor = nullptr,
                           const srv::ServerStats *server = nullptr);

/**
 * Arms the logging termination hook so that, if panic()/fatal()
 * fires while a run is in flight, the JSON run report is still
 * written (durably) with "outcome" set to "panic" or "fatal" and
 * the makespan observed at the moment of death. Construct after the
 * System (with the pre-run metadata) and disarm() once the normal
 * report has been written. Only one guard can be armed at a time —
 * the hook is process-global, like the termination it intercepts.
 */
class CrashReportGuard
{
  public:
    CrashReportGuard(std::string path, sys::System &system, RunMeta meta,
                     std::size_t top_n);
    ~CrashReportGuard() { disarm(); }

    CrashReportGuard(const CrashReportGuard &) = delete;
    CrashReportGuard &operator=(const CrashReportGuard &) = delete;

    /** Normal completion: the real report was written; stand down. */
    void disarm();

  private:
    bool armed = false;
};

} // namespace obs
} // namespace misar

#endif // MISAR_OBS_RUN_REPORT_HH
