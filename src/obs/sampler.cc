#include "obs/sampler.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace misar {
namespace obs {

StatSampler::StatSampler(EventQueue &eq, Tick interval)
    : eq(eq), _interval(interval)
{
    if (interval == 0)
        fatal("StatSampler requires a non-zero interval");
}

void
StatSampler::addProbe(std::string label, std::function<double()> fn)
{
    _labels.push_back(std::move(label));
    probes.push_back(std::move(fn));
}

void
StatSampler::addObserver(std::function<void(Tick)> fn)
{
    observers.push_back(std::move(fn));
}

void
StatSampler::sampleNow()
{
    if (_rows.size() >= maxRows) {
        ++_droppedRows;
        return;
    }
    Row r;
    r.tick = eq.now();
    r.values.reserve(probes.size());
    for (const auto &p : probes)
        r.values.push_back(p());
    _rows.push_back(std::move(r));
    for (const auto &o : observers)
        o(eq.now());
}

void
StatSampler::start()
{
    sampleNow();
    armed = true;
    eq.schedule(_interval, [this] { tick(); });
}

void
StatSampler::tick()
{
    armed = false;
    if (doneFn && doneFn())
        return;
    sampleNow();
    armed = true;
    eq.schedule(_interval, [this] { tick(); });
}

void
StatSampler::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const std::string &l : _labels) {
        // CSV-safe: labels are simple identifiers by convention, but
        // quote anything containing a comma just in case.
        if (l.find(',') != std::string::npos || l.find('"') != std::string::npos) {
            std::string q = l;
            std::string esc;
            for (char c : q) {
                if (c == '"')
                    esc += '"';
                esc += c;
            }
            os << ",\"" << esc << "\"";
        } else {
            os << "," << l;
        }
    }
    os << "\n";
    for (const Row &r : _rows) {
        os << r.tick;
        for (double v : r.values)
            os << "," << v;
        os << "\n";
    }
}

} // namespace obs
} // namespace misar
