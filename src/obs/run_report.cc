#include "obs/run_report.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/heatmap.hh"
#include "obs/sampler.hh"
#include "obs/sync_profiler.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "system/system.hh"
#include "util/json.hh"

namespace misar {
namespace obs {

void
writeRunReport(std::ostream &os, const RunMeta &meta,
               const StatRegistry &stats, const SyncProfiler *prof,
               std::size_t top_n, const StatSampler *sampler,
               const EventQueue *eq, const ResourceMonitor *monitor,
               const srv::ServerStats *server)
{
    util::JsonWriter w(os);
    w.beginObject();
    w.kv("schemaVersion", runReportSchemaVersion);

    // -- metadata ----------------------------------------------------
    w.key("meta").beginObject();
    w.kv("app", meta.app);
    w.kv("preset", meta.preset);
    w.kv("accel", meta.accel);
    w.kv("flavor", meta.flavor);
    w.kv("cores", meta.cores);
    w.kv("smtWays", meta.smtWays);
    w.kv("msaEntries", meta.msaEntries);
    w.kv("omuCounters", meta.omuCounters);
    w.kv("omuEnabled", meta.omuEnabled);
    w.kv("hwSyncBitOpt", meta.hwSyncBitOpt);
    w.kv("seed", meta.seed);
    w.kv("outcome", meta.outcome);
    w.kv("makespan", meta.makespan);
    w.kv("hwCoverage", meta.hwCoverage, 6);
    w.endObject();

    // -- resilience summary (PR 1 counters) --------------------------
    w.key("resilience").beginObject();
    w.kv("timeouts", stats.counterValue("resil.timeouts"));
    w.kv("retries", stats.counterValue("resil.retries"));
    w.kv("abandonedOps", stats.counterValue("resil.abandonedOps"));
    w.kv("staleResponses", stats.counterValue("resil.staleResponses"));
    w.kv("watchdogStalls", stats.counterValue("resil.watchdogStalls"));
    w.kv("invariantViolations",
         stats.counterValue("resil.invariantViolations"));
    w.kv("injectedDrops", stats.counterValue("resil.injectedDrops"));
    w.kv("injectedDups", stats.counterValue("resil.injectedDups"));
    w.kv("injectedDelays", stats.counterValue("resil.injectedDelays"));
    w.kv("abortedOps", stats.counterValue("sync.abortedOps"));
    w.kv("offlineEvents", stats.sumCountersSuffix(".msa.offlineEvents"));
    w.kv("offlineSheds",
         stats.sumCountersSuffix(".msa.offlineLockAborts") +
             stats.sumCountersSuffix(".msa.offlineRwAborts") +
             stats.sumCountersSuffix(".msa.offlineBarrierAborts") +
             stats.sumCountersSuffix(".msa.offlineCondAborts"));
    w.kv("offlineDenied", stats.sumCountersSuffix(".msa.offlineDenied"));
    w.kv("crossedSnoops", stats.sumCountersSuffix(".l1.crossedSnoops"));
    w.kv("nocRetransmits", stats.counterValue("noc.rel.retransmits"));
    w.kv("nocDedups", stats.counterValue("noc.rel.dedups"));
    w.kv("nocAbandoned", stats.counterValue("noc.rel.abandoned"));
    w.kv("flitsCorrupted", stats.counterValue("noc.pktsCorrupted"));
    w.kv("detourHops", stats.counterValue("noc.detourHops"));
    w.kv("deadLinks", stats.counterValue("noc.deadLinks"));
    w.kv("deadRouters", stats.counterValue("noc.deadRouters"));
    w.kv("partitionSheds", stats.counterValue("resil.partitionSheds"));
    w.kv("coreKills", stats.counterValue("resil.coreKills"));
    w.kv("deadDeclarations", stats.counterValue("resil.deadDeclarations"));
    w.kv("lockRevocations", stats.sumCountersSuffix(".msa.lockRevocations"));
    w.kv("barrierReconfigs",
         stats.sumCountersSuffix(".msa.barrierReconfigs"));
    w.kv("fencedReleases", stats.sumCountersSuffix(".msa.fencedReleases"));
    w.kv("leaseProbes", stats.sumCountersSuffix(".msa.leaseProbes"));
    w.kv("leaseRenewals", stats.sumCountersSuffix(".msa.leaseRenewals"));
    w.kv("deadWaiterDrops", stats.sumCountersSuffix(".msa.deadWaiterDrops"));
    w.kv("failovers", stats.sumCountersSuffix(".msa.failovers"));
    w.kv("rehomedVars", stats.sumCountersSuffix(".msa.rehomedVars"));
    w.endObject();

    // -- full statistics registry ------------------------------------
    w.key("stats").beginObject();
    w.key("counters").beginObject();
    stats.forEachCounter([&](const std::string &name, const StatCounter &c) {
        w.kv(name, c.value());
    });
    w.endObject();
    w.key("averages").beginObject();
    stats.forEachAverage([&](const std::string &name, const StatAverage &a) {
        w.key(name).beginObject();
        w.kv("count", a.count());
        w.kv("mean", a.mean(), 3);
        w.kv("min", a.count() ? a.min() : 0.0, 3);
        w.kv("max", a.max(), 3);
        w.kv("sum", a.sum(), 3);
        w.endObject();
    });
    w.endObject();
    w.key("histograms").beginObject();
    stats.forEachHistogram(
        [&](const std::string &name, const StatHistogram &h) {
            w.key(name).beginObject();
            w.kv("total", h.total());
            w.key("buckets").beginArray();
            for (std::uint64_t b : h.data())
                w.value(b);
            w.endArray();
            w.endObject();
        });
    w.endObject();
    w.endObject();

    // -- sync-variable contention profile ----------------------------
    if (prof) {
        std::ostringstream vars;
        prof->writeJson(vars, top_n);
        w.key("syncVars").rawValue(vars.str());

        // Run-level wait distribution: merged across reps by campaign
        // aggregation, so it lives outside the top-N-truncated array.
        w.key("latency").beginObject();
        w.key("syncWait");
        prof->overallWait().writeJson(w);
        w.endObject();
    }

    // -- event-kernel host-side counters ------------------------------
    if (eq) {
        const auto &ps = eq->poolStats();
        w.key("eventQueue").beginObject();
        w.kv("executedEvents", eq->executedEvents());
        w.kv("scheduledEvents", ps.scheduled);
        w.kv("recordCapacity", ps.recordCapacity);
        w.kv("chunkAllocs", ps.chunkAllocs);
        w.kv("heapCallbacks", ps.heapCallbacks);
        w.kv("maxPending", ps.maxPending);
        w.endObject();
    }

    // -- time-series sampler summary ---------------------------------
    if (sampler) {
        w.key("samples").beginObject();
        w.kv("interval", sampler->interval());
        w.kv("rows", std::uint64_t(sampler->rows().size()));
        w.kv("droppedRows", sampler->droppedRows());
        w.key("columns").beginArray();
        for (const std::string &label : sampler->labels())
            w.value(label);
        w.endArray();
        w.endObject();
    }

    // -- resource-pressure summary -----------------------------------
    if (monitor) {
        w.key("heatmap");
        monitor->writeSummaryJson(w);
    }

    // -- server-run accounting (schema v3, extended in v4) -------------
    if (server) {
        w.key("server").beginObject();
        w.kv("offeredRate", server->offeredRate, 4);
        w.kv("generated", server->generated);
        w.kv("completed", server->completed);
        w.kv("rejected", server->rejected);
        w.kv("stranded", server->stranded);
        w.kv("steals", server->steals);
        w.kv("throughput", server->throughput, 6);
        w.kv("p50", server->latency.p50());
        w.kv("p99", server->latency.p99());
        w.kv("p999", server->latency.p999());
        w.kv("knee", server->knee);
        // v4 additions keep the v3 keys above byte-identical: new
        // scalars are appended, and the slo/retries/tenants blocks
        // appear only when the corresponding feature was armed.
        w.kv("rejectedSlo", server->rejectedSlo);
        w.kv("goodput", server->goodput, 6);
        if (server->sloTicks > 0) {
            w.key("slo").beginObject();
            w.kv("ticks", server->sloTicks);
            w.kv("met", server->sloMet);
            w.endObject();
        }
        if (server->retryPolicy != srv::RetryPolicy::None) {
            w.key("retries").beginObject();
            w.kv("policy", srv::retryPolicyName(server->retryPolicy));
            w.kv("attempts", server->retries);
            w.kv("budgetDenied", server->retryBudgetDenied);
            w.endObject();
        }
        if (!server->tenants.empty()) {
            w.key("tenants").beginArray();
            for (const srv::TenantStats &ts : server->tenants) {
                w.beginObject();
                w.kv("name", ts.name);
                w.kv("offeredRate", ts.offeredRate, 4);
                w.kv("generated", ts.generated);
                w.kv("completed", ts.completed);
                w.kv("rejected", ts.rejected);
                w.kv("rejectedSlo", ts.rejectedSlo);
                w.kv("stranded", ts.stranded);
                w.kv("sloMet", ts.sloMet);
                w.kv("throughput", ts.throughput, 6);
                w.kv("goodput", ts.goodput, 6);
                w.kv("p50", ts.latency.p50());
                w.kv("p99", ts.latency.p99());
                w.kv("p999", ts.latency.p999());
                w.key("latency");
                ts.latency.writeJson(w);
                w.endObject();
            }
            w.endArray();
        }
        w.key("latency");
        server->latency.writeJson(w);
        w.endObject();
    }

    w.endObject();
    os << "\n";
}

bool
writeRunReportDurable(const std::string &path, const RunMeta &meta,
                      const StatRegistry &stats, const SyncProfiler *prof,
                      std::size_t top_n, const StatSampler *sampler,
                      const EventQueue *eq, const ResourceMonitor *monitor,
                      const srv::ServerStats *server)
{
    std::ostringstream os;
    writeRunReport(os, meta, stats, prof, top_n, sampler, eq, monitor,
                   server);
    const std::string body = os.str();

    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("cannot open stats file %s: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    std::size_t off = 0;
    while (off < body.size()) {
        ssize_t n = ::write(fd, body.data() + off, body.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("write to %s failed: %s", path.c_str(),
                 std::strerror(errno));
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced)
        warn("fsync of %s failed", path.c_str());
    return synced;
}

CrashReportGuard::CrashReportGuard(std::string path, sys::System &system,
                                   RunMeta meta, std::size_t top_n)
{
    setTerminationHook([path = std::move(path), &system,
                        meta = std::move(meta),
                        top_n](const char *kind) mutable {
        meta.outcome = kind;
        meta.makespan = system.makespan();
        meta.hwCoverage = system.hwCoverage();
        if (system.monitor())
            system.monitor()->finalize(system.eventQueue().now());
        writeRunReportDurable(path, meta, system.stats(),
                              system.syncProfiler(), top_n,
                              system.sampler(), &system.eventQueue(),
                              system.monitor());
    });
    armed = true;
}

void
CrashReportGuard::disarm()
{
    if (armed) {
        clearTerminationHook();
        armed = false;
    }
}

} // namespace obs
} // namespace misar
