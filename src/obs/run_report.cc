#include "obs/run_report.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <vector>

#include "obs/sampler.hh"
#include "obs/sync_profiler.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "system/system.hh"

namespace misar {
namespace obs {

namespace {

void
writeStr(std::ostream &os, const char *key, const std::string &v)
{
    os << "\"" << key << "\":\"" << jsonEscape(v) << "\"";
}

/**
 * JSON numbers must be finite; averages over zero samples yield NaN
 * in some stat implementations, so clamp anything non-finite to 0.
 */
double
finite(double v)
{
    return v == v ? v : 0.0;
}

} // namespace

void
writeRunReport(std::ostream &os, const RunMeta &meta,
               const StatRegistry &stats, const SyncProfiler *prof,
               std::size_t top_n, const StatSampler *sampler,
               const EventQueue *eq)
{
    os << "{\"schemaVersion\":" << runReportSchemaVersion;

    // -- metadata ----------------------------------------------------
    os << ",\"meta\":{";
    writeStr(os, "app", meta.app);
    os << ",";
    writeStr(os, "preset", meta.preset);
    os << ",";
    writeStr(os, "accel", meta.accel);
    os << ",";
    writeStr(os, "flavor", meta.flavor);
    os << ",\"cores\":" << meta.cores << ",\"smtWays\":" << meta.smtWays
       << ",\"msaEntries\":" << meta.msaEntries
       << ",\"omuCounters\":" << meta.omuCounters << ",\"omuEnabled\":"
       << (meta.omuEnabled ? "true" : "false") << ",\"hwSyncBitOpt\":"
       << (meta.hwSyncBitOpt ? "true" : "false")
       << ",\"seed\":" << meta.seed << ",";
    writeStr(os, "outcome", meta.outcome);
    os << ",\"makespan\":" << meta.makespan << ",\"hwCoverage\":"
       << std::fixed << std::setprecision(6) << finite(meta.hwCoverage)
       << "}";

    // -- resilience summary (PR 1 counters) --------------------------
    os << ",\"resilience\":{"
       << "\"timeouts\":" << stats.counterValue("resil.timeouts")
       << ",\"retries\":" << stats.counterValue("resil.retries")
       << ",\"abandonedOps\":" << stats.counterValue("resil.abandonedOps")
       << ",\"staleResponses\":" << stats.counterValue("resil.staleResponses")
       << ",\"watchdogStalls\":" << stats.counterValue("resil.watchdogStalls")
       << ",\"invariantViolations\":"
       << stats.counterValue("resil.invariantViolations")
       << ",\"injectedDrops\":" << stats.counterValue("resil.injectedDrops")
       << ",\"injectedDups\":" << stats.counterValue("resil.injectedDups")
       << ",\"injectedDelays\":" << stats.counterValue("resil.injectedDelays")
       << ",\"abortedOps\":" << stats.counterValue("sync.abortedOps")
       << ",\"offlineEvents\":"
       << stats.sumCountersSuffix(".msa.offlineEvents")
       << ",\"offlineSheds\":"
       << (stats.sumCountersSuffix(".msa.offlineLockAborts") +
           stats.sumCountersSuffix(".msa.offlineRwAborts") +
           stats.sumCountersSuffix(".msa.offlineBarrierAborts") +
           stats.sumCountersSuffix(".msa.offlineCondAborts"))
       << ",\"offlineDenied\":"
       << stats.sumCountersSuffix(".msa.offlineDenied")
       << ",\"crossedSnoops\":"
       << stats.sumCountersSuffix(".l1.crossedSnoops")
       << ",\"nocRetransmits\":" << stats.counterValue("noc.rel.retransmits")
       << ",\"nocDedups\":" << stats.counterValue("noc.rel.dedups")
       << ",\"nocAbandoned\":" << stats.counterValue("noc.rel.abandoned")
       << ",\"flitsCorrupted\":" << stats.counterValue("noc.pktsCorrupted")
       << ",\"detourHops\":" << stats.counterValue("noc.detourHops")
       << ",\"deadLinks\":" << stats.counterValue("noc.deadLinks")
       << ",\"deadRouters\":" << stats.counterValue("noc.deadRouters")
       << ",\"partitionSheds\":" << stats.counterValue("resil.partitionSheds")
       << ",\"coreKills\":" << stats.counterValue("resil.coreKills")
       << ",\"deadDeclarations\":"
       << stats.counterValue("resil.deadDeclarations")
       << ",\"lockRevocations\":"
       << stats.sumCountersSuffix(".msa.lockRevocations")
       << ",\"barrierReconfigs\":"
       << stats.sumCountersSuffix(".msa.barrierReconfigs")
       << ",\"fencedReleases\":"
       << stats.sumCountersSuffix(".msa.fencedReleases")
       << ",\"leaseProbes\":"
       << stats.sumCountersSuffix(".msa.leaseProbes")
       << ",\"leaseRenewals\":"
       << stats.sumCountersSuffix(".msa.leaseRenewals")
       << ",\"deadWaiterDrops\":"
       << stats.sumCountersSuffix(".msa.deadWaiterDrops")
       << ",\"failovers\":" << stats.sumCountersSuffix(".msa.failovers")
       << ",\"rehomedVars\":"
       << stats.sumCountersSuffix(".msa.rehomedVars")
       << "}";

    // -- full statistics registry ------------------------------------
    os << ",\"stats\":{\"counters\":{";
    {
        bool first = true;
        stats.forEachCounter(
            [&](const std::string &name, const StatCounter &c) {
                if (!first)
                    os << ",";
                first = false;
                os << "\"" << jsonEscape(name) << "\":" << c.value();
            });
    }
    os << "},\"averages\":{";
    {
        bool first = true;
        stats.forEachAverage(
            [&](const std::string &name, const StatAverage &a) {
                if (!first)
                    os << ",";
                first = false;
                os << "\"" << jsonEscape(name) << "\":{\"count\":"
                   << a.count() << ",\"mean\":" << std::fixed
                   << std::setprecision(3) << finite(a.mean())
                   << ",\"min\":" << finite(a.count() ? a.min() : 0.0)
                   << ",\"max\":" << finite(a.max()) << ",\"sum\":"
                   << finite(a.sum()) << "}";
            });
    }
    os << "},\"histograms\":{";
    {
        bool first = true;
        stats.forEachHistogram(
            [&](const std::string &name, const StatHistogram &h) {
                if (!first)
                    os << ",";
                first = false;
                os << "\"" << jsonEscape(name) << "\":{\"total\":"
                   << h.total() << ",\"buckets\":[";
                const auto &b = h.data();
                for (std::size_t i = 0; i < b.size(); ++i)
                    os << (i ? "," : "") << b[i];
                os << "]}";
            });
    }
    os << "}}";

    // -- sync-variable contention profile ----------------------------
    if (prof) {
        os << ",\"syncVars\":";
        prof->writeJson(os, top_n);
    }

    // -- event-kernel host-side counters ------------------------------
    if (eq) {
        const auto &ps = eq->poolStats();
        os << ",\"eventQueue\":{\"executedEvents\":" << eq->executedEvents()
           << ",\"scheduledEvents\":" << ps.scheduled
           << ",\"recordCapacity\":" << ps.recordCapacity
           << ",\"chunkAllocs\":" << ps.chunkAllocs
           << ",\"heapCallbacks\":" << ps.heapCallbacks
           << ",\"maxPending\":" << ps.maxPending << "}";
    }

    // -- time-series sampler summary ---------------------------------
    if (sampler) {
        os << ",\"samples\":{\"interval\":" << sampler->interval()
           << ",\"rows\":" << sampler->rows().size()
           << ",\"droppedRows\":" << sampler->droppedRows()
           << ",\"columns\":[";
        const auto &labels = sampler->labels();
        for (std::size_t i = 0; i < labels.size(); ++i) {
            os << (i ? "," : "") << "\"" << jsonEscape(labels[i]) << "\"";
        }
        os << "]}";
    }

    os << "}\n";
}

bool
writeRunReportDurable(const std::string &path, const RunMeta &meta,
                      const StatRegistry &stats, const SyncProfiler *prof,
                      std::size_t top_n, const StatSampler *sampler,
                      const EventQueue *eq)
{
    std::ostringstream os;
    writeRunReport(os, meta, stats, prof, top_n, sampler, eq);
    const std::string body = os.str();

    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("cannot open stats file %s: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    std::size_t off = 0;
    while (off < body.size()) {
        ssize_t n = ::write(fd, body.data() + off, body.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("write to %s failed: %s", path.c_str(),
                 std::strerror(errno));
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced)
        warn("fsync of %s failed", path.c_str());
    return synced;
}

CrashReportGuard::CrashReportGuard(std::string path, sys::System &system,
                                   RunMeta meta, std::size_t top_n)
{
    setTerminationHook([path = std::move(path), &system,
                        meta = std::move(meta),
                        top_n](const char *kind) mutable {
        meta.outcome = kind;
        meta.makespan = system.makespan();
        meta.hwCoverage = system.hwCoverage();
        writeRunReportDurable(path, meta, system.stats(),
                              system.syncProfiler(), top_n,
                              system.sampler(), &system.eventQueue());
    });
    armed = true;
}

void
CrashReportGuard::disarm()
{
    if (armed) {
        clearTerminationHook();
        armed = false;
    }
}

} // namespace obs
} // namespace misar
