/**
 * @file
 * Resource-pressure monitor: per-resource utilization timelines.
 *
 * MiSAR's sizing argument (2 MSA entries + a handful of OMU counters
 * per tile suffice) is only credible if we can see where and when
 * pressure lands. The monitor records, per registered resource gauge
 * (MSA slice entry occupancy and free-list depth, OMU counter values,
 * NoC per-link forwarded-flit counts, NI injection-queue depths), one
 * value per sampler row — it is driven as a StatSampler observer, so
 * its timeline is tick-aligned with the CSV sampler and inherits the
 * maintenance-aware scheduling (no events of its own, no timing
 * perturbation). On top of the sampled matrix it keeps event-driven
 * state fed by null-gated hooks in the MSA slices: OMU activity
 * episodes (spans during which a tile has at least one live overflow
 * counter), per-tile OMU high-water marks, and entry-overflow event
 * counts.
 *
 * Output: heatmap.json (resource x time-bucket matrix plus episode
 * spans; schema in docs/OBSERVABILITY.md), Chrome-trace counter
 * events when a tracer is attached, and a compact summary block
 * embedded in the v2 run report for campaign-level aggregation.
 */

#ifndef MISAR_OBS_HEATMAP_HH
#define MISAR_OBS_HEATMAP_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace misar {
namespace util {
class JsonWriter;
} // namespace util

namespace obs {

class Tracer;

/** Collects resource utilization timelines and pressure episodes. */
class ResourceMonitor
{
  public:
    /** @p interval is the sampler's tick interval (metadata only). */
    explicit ResourceMonitor(Tick interval) : _interval(interval) {}

    /**
     * Register a gauge. @p kind groups resources in the heatmap
     * ("msaOccupancy", "msaFree", "omu", "nocLink", "niQueue");
     * @p pid / @p tid place the Chrome-trace counter row.
     */
    void addGauge(std::string name, std::string kind, unsigned pid,
                  unsigned tid, std::function<double()> fn);

    /** Emit counter events into @p t at every sample (may be null). */
    void attachTracer(Tracer *t);

    /** Take one sample row (wired as a StatSampler observer). */
    void sample(Tick now);

    /** @name Event-driven hooks (callers gate on a null monitor). @{ */
    /** An MSA entry allocation overflowed at @p tile. */
    void onOverflow(unsigned tile, Tick now);
    /**
     * A tile's OMU state changed: @p active_counters live counters
     * after the update, @p count the touched counter's new value.
     * Zero->nonzero opens an activity episode; nonzero->zero closes
     * it.
     */
    void omuUpdate(unsigned tile, unsigned active_counters,
                   std::uint32_t count, Tick now);
    /** @} */

    /** Close still-open episodes at end of run (idempotent). */
    void finalize(Tick now);

    /** One OMU activity span on one tile. */
    struct Episode
    {
        unsigned tile;
        Tick begin;
        Tick end;
        bool closed;
    };

    const std::vector<Episode> &omuEpisodes() const { return episodes; }
    std::uint64_t overflowEvents() const { return _overflowEvents; }
    std::uint64_t omuHighWater() const; ///< max over all tiles
    std::size_t numGauges() const { return gauges.size(); }
    std::size_t numSamples() const { return ticks.size(); }
    const std::vector<Tick> &sampleTicks() const { return ticks; }

    /** Sampled values of gauge @p g (one per sampleTicks() entry). */
    const std::vector<double> &gaugeValues(std::size_t g) const;
    const std::string &gaugeName(std::size_t g) const;
    const std::string &gaugeKind(std::size_t g) const;

    /** Max sampled value across gauges of @p kind (0 when none). */
    double maxOfKind(const std::string &kind) const;

    /** Total ticks covered by OMU episodes (finalize() first). */
    std::uint64_t omuEpisodeTicks() const;

    /** Bound the sample count; further rows are dropped and counted. */
    void setMaxRows(std::size_t n) { maxRows = n; }
    std::uint64_t droppedRows() const { return _droppedRows; }

    /** The full heatmap.json document. */
    void writeJson(std::ostream &os) const;

    /** The "heatmap" summary object of the v2 run report. */
    void writeSummaryJson(util::JsonWriter &w) const;

  private:
    struct Gauge
    {
        std::string name;
        std::string kind;
        unsigned pid;
        unsigned tid;
        std::function<double()> fn;
        std::vector<double> values;
        int track = -1; ///< tracer counter track, -1 = unattached
    };

    struct TileState
    {
        unsigned active = 0; ///< live OMU counters after last update
        std::uint32_t highWater = 0;
        std::int64_t openEpisode = -1; ///< index into episodes
    };

    TileState &tileState(unsigned tile);

    Tick _interval;
    // deque: gauge names must stay address-stable (the tracer keeps
    // const char* into them) while registration grows the set.
    std::deque<Gauge> gauges;
    std::vector<Tick> ticks;
    std::vector<TileState> tiles;
    std::vector<Episode> episodes;
    std::uint64_t _overflowEvents = 0;
    std::size_t maxRows = 1u << 20;
    std::uint64_t _droppedRows = 0;
    Tracer *tracer = nullptr;
    bool finalized = false;
};

} // namespace obs
} // namespace misar

#endif // MISAR_OBS_HEATMAP_HH
