/**
 * @file
 * Periodic statistics sampler.
 *
 * Snapshots a set of registered probes (arbitrary double-valued
 * functions, typically cumulative StatRegistry counters) every K
 * ticks, building a time series that can be dumped as CSV — e.g.
 * overflow events, NoC utilization, or outstanding retries over time.
 *
 * The sampler self-reschedules on the event queue, so it is a
 * maintenance event source like the watchdog: System::runDetailed
 * subtracts its pending event from the deadlock check via
 * pendingMaintenance(). It stops rescheduling once the done function
 * reports the run is over.
 */

#ifndef MISAR_OBS_SAMPLER_HH
#define MISAR_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace misar {
namespace obs {

/** Snapshots registered probes every @p interval ticks. */
class StatSampler
{
  public:
    StatSampler(EventQueue &eq, Tick interval);

    /** Register a probe; its label becomes a CSV column. */
    void addProbe(std::string label, std::function<double()> fn);

    /**
     * Register a side observer fired after every row is taken (same
     * maintenance-aware schedule, same quiesce sample, skipped when a
     * row is dropped by the cap) — how the resource monitor stays
     * tick-aligned with the sampler without scheduling its own
     * events.
     */
    void addObserver(std::function<void(Tick)> fn);

    /** Install the "run is over" predicate (stops rescheduling). */
    void setDoneFn(std::function<bool()> fn) { doneFn = std::move(fn); }

    /** Take the t=0 row and arm the periodic event. */
    void start();

    /** Take one snapshot immediately (also used at quiesce). */
    void sampleNow();

    /** Self-rescheduled events currently pending (0 or 1). */
    std::size_t pendingMaintenance() const { return armed ? 1u : 0u; }

    /** Bound the row count; further samples are dropped and counted. */
    void setMaxRows(std::size_t n) { maxRows = n; }
    std::uint64_t droppedRows() const { return _droppedRows; }

    struct Row
    {
        Tick tick;
        std::vector<double> values;
    };

    const std::vector<Row> &rows() const { return _rows; }
    const std::vector<std::string> &labels() const { return _labels; }

    /** CSV with a "tick,<label>,..." header row. */
    void writeCsv(std::ostream &os) const;

    Tick interval() const { return _interval; }

  private:
    void tick();

    EventQueue &eq;
    Tick _interval;
    bool armed = false;
    std::size_t maxRows = 1u << 20;
    std::uint64_t _droppedRows = 0;
    std::vector<std::string> _labels;
    std::vector<std::function<double()>> probes;
    std::vector<std::function<void(Tick)>> observers;
    std::vector<Row> _rows;
    std::function<bool()> doneFn;
};

} // namespace obs
} // namespace misar

#endif // MISAR_OBS_SAMPLER_HH
