/**
 * @file
 * Per-sync-variable contention profiler.
 *
 * Keyed by synchronization address, it aggregates what the MSA client
 * and slices observe about each variable: how often it was acquired,
 * whether the hardware or the software-fallback path served it, how
 * long acquirers waited (histogrammed), how long holders held it, how
 * long barrier episodes took, and how the lock moved between cores
 * (handoffs vs same-core re-acquires). The output is the "top-N
 * hottest sync variables" report the MiSAR/SynCron evaluations argue
 * from.
 *
 * The profiler is passive: it never schedules events, so enabling it
 * cannot perturb simulated timing.
 */

#ifndef MISAR_OBS_SYNC_PROFILER_HH
#define MISAR_OBS_SYNC_PROFILER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "cpu/op.hh"
#include "obs/histogram.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace misar {
namespace obs {

/** Aggregated statistics for one synchronization variable. */
struct SyncVarStats
{
    Addr addr = invalidAddr;
    /** Last instruction kind seen (classifies the variable). */
    cpu::SyncInstr kind = cpu::SyncInstr::Lock;
    /** Completed sync operations naming this address. */
    std::uint64_t ops = 0;
    /** Acquire-class completions by path. */
    std::uint64_t hwAcquires = 0;
    std::uint64_t swAcquires = 0;
    /** Acquires served by the HWSync-bit silent fast path. */
    std::uint64_t silentAcquires = 0;
    /** MSA-initiated aborts observed on this address. */
    std::uint64_t aborts = 0;
    /** Hardware grants that moved the lock to a different core. */
    std::uint64_t handoffs = 0;
    /** Hardware grants back to the previous owner. */
    std::uint64_t reacquires = 0;
    /** Issue-to-completion wait of acquire-class ops (ticks). */
    StatAverage wait;
    /** The same waits, log-bucketed for percentile readout. */
    LogHistogram waitHist;
    /** Acquire-to-release hold time of hardware-held locks. */
    StatAverage hold;
    /** First-arrival-to-release latency of barrier episodes. */
    StatAverage barrierEpisode;

    /** Ranking key: total ticks threads spent waiting here. */
    double contention() const { return wait.sum(); }
};

/** Collects SyncVarStats from the MSA client hub and slices. */
class SyncProfiler
{
  public:
    /** @name Client-hub hooks. @{ */
    /** A sync instruction completed (any path, any result). */
    void onComplete(CoreId core, const cpu::Op &op, cpu::SyncResult r,
                    Tick issued_at, Tick now);
    /** A LOCK/TRYLOCK was served locally by the silent fast path. */
    void onSilentAcquire(CoreId core, Addr a, Tick now);
    /** An UNLOCK of a hardware- or silently-held lock completed. */
    void onHwRelease(CoreId core, Addr a, Tick now);
    /** @} */

    /** @name Slice hooks. @{ */
    /** The slice granted the lock @p a to @p core. */
    void onGrant(Addr a, CoreId core);
    /** A barrier arrival/release at the slice. */
    void onBarrierArrive(Addr a, Tick now);
    void onBarrierRelease(Addr a, Tick now);
    /** @} */

    /** Number of distinct variables observed. */
    std::size_t numVars() const { return vars.size(); }

    /**
     * Wait-time distribution over every variable combined: the
     * run-level sync latency histogram (run report "latency" block,
     * merged across reps by campaign aggregation).
     */
    const LogHistogram &overallWait() const { return allWait; }

    /** Stats for @p a, or nullptr if never observed. */
    const SyncVarStats *var(Addr a) const;

    /** Variables sorted hottest-first (by total wait time). */
    std::vector<const SyncVarStats *> hottest(std::size_t top_n) const;

    /** Human-readable top-N table. */
    void writeReport(std::ostream &os, std::size_t top_n) const;

    /** JSON array of the top-N entries (for the run report). */
    void writeJson(std::ostream &os, std::size_t top_n) const;

  private:
    SyncVarStats &at(Addr a, cpu::SyncInstr kind);

    std::unordered_map<Addr, SyncVarStats> vars;
    LogHistogram allWait;
    /** Hardware-held acquire tick per (core, addr). */
    std::map<std::pair<CoreId, Addr>, Tick> holdStart;
    /** Open barrier episode start per addr. */
    std::unordered_map<Addr, Tick> episodeStart;
    /** Last hardware grantee per addr (handoff-chain tracking). */
    std::unordered_map<Addr, CoreId> lastGrantee;
};

} // namespace obs
} // namespace misar

#endif // MISAR_OBS_SYNC_PROFILER_HH
