#include "obs/histogram.hh"

#include <bit>
#include <cmath>

#include "util/json.hh"

namespace misar {
namespace obs {

unsigned
LogHistogram::bucketIndex(std::uint64_t v)
{
    if (v < exactLimit)
        return static_cast<unsigned>(v);
    // s scales v down to a 7-bit mantissa m in [64,128); the index
    // 64*s + m continues the exact range seamlessly (v=128 -> 128).
    unsigned s = static_cast<unsigned>(std::bit_width(v)) - 7;
    std::uint64_t m = v >> s;
    return static_cast<unsigned>(64 * s + m);
}

std::uint64_t
LogHistogram::bucketLow(unsigned idx)
{
    if (idx < exactLimit)
        return idx;
    unsigned s = idx / 64 - 1;
    std::uint64_t m = idx - 64ULL * s;
    return m << s;
}

std::uint64_t
LogHistogram::bucketValue(unsigned idx)
{
    if (idx < exactLimit)
        return idx;
    unsigned s = idx / 64 - 1;
    // Midpoint of a width-2^s bucket: at most half a bucket from any
    // member, i.e. 2^(s-1) / (64*2^s) = 1/128 relative error.
    return bucketLow(idx) + (1ULL << (s - 1));
}

void
LogHistogram::record(std::uint64_t v, std::uint64_t n)
{
    if (n == 0)
        return;
    unsigned idx = bucketIndex(v);
    if (idx >= counts.size())
        counts.resize(idx + 1, 0);
    counts[idx] += n;
    total += n;
    accum += v * n;
    if (v < lo)
        lo = v;
    if (v > hi)
        hi = v;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.total == 0)
        return;
    if (other.counts.size() > counts.size())
        counts.resize(other.counts.size(), 0);
    for (std::size_t i = 0; i < other.counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    accum += other.accum;
    if (other.lo < lo)
        lo = other.lo;
    if (other.hi > hi)
        hi = other.hi;
}

std::uint64_t
LogHistogram::percentile(double q) const
{
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * double(total)));
    if (rank < 1)
        rank = 1;
    if (rank > total)
        rank = total;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank)
            return bucketValue(static_cast<unsigned>(i));
    }
    return hi; // unreachable when counters are consistent
}

void
LogHistogram::writeJson(util::JsonWriter &w) const
{
    w.beginObject();
    w.kv("count", total);
    w.kv("sum", accum);
    w.kv("min", min());
    w.kv("max", hi);
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (!counts[i])
            continue;
        w.beginArray();
        w.value(std::uint64_t(i));
        w.value(counts[i]);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

bool
LogHistogram::fromJson(const util::Json &j, LogHistogram &out)
{
    if (!j.isObj() || !j.at("buckets").isArr())
        return false;
    LogHistogram h;
    std::uint64_t from_buckets = 0;
    for (const util::Json &b : j.at("buckets").arr) {
        if (!b.isArr() || b.arr.size() != 2)
            return false;
        std::uint64_t idx = b.arr[0].uintOr(~0ULL);
        std::uint64_t cnt = b.arr[1].uintOr(0);
        if (idx > 64ULL * 64)
            return false; // beyond any encodable bucket
        if (cnt == 0)
            continue;
        if (idx >= h.counts.size())
            h.counts.resize(idx + 1, 0);
        h.counts[idx] += cnt;
        from_buckets += cnt;
    }
    h.total = j.at("count").uintOr(from_buckets);
    if (h.total != from_buckets)
        return false;
    h.accum = j.at("sum").uintOr(0);
    h.hi = j.at("max").uintOr(0);
    h.lo = h.total ? j.at("min").uintOr(0) : ~0ULL;
    out = std::move(h);
    return true;
}

bool
LogHistogram::operator==(const LogHistogram &o) const
{
    if (total != o.total || accum != o.accum || hi != o.hi ||
        min() != o.min())
        return false;
    std::size_t n = counts.size() > o.counts.size() ? counts.size()
                                                    : o.counts.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t a = i < counts.size() ? counts[i] : 0;
        std::uint64_t b = i < o.counts.size() ? o.counts[i] : 0;
        if (a != b)
            return false;
    }
    return true;
}

} // namespace obs
} // namespace misar
