/**
 * @file
 * Top-level simulated system: tiles (core + L1 + LLC/directory slice
 * + MSA slice + router) assembled per a SystemConfig.
 */

#ifndef MISAR_SYSTEM_SYSTEM_HH
#define MISAR_SYSTEM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "cpu/core.hh"
#include "cpu/thread_api.hh"
#include "mem/mem_system.hh"
#include "msa/ideal_sync.hh"
#include "msa/msa_client.hh"
#include "msa/msa_slice.hh"
#include "msa/null_sync.hh"
#include "obs/heatmap.hh"
#include "obs/sampler.hh"
#include "obs/sync_profiler.hh"
#include "obs/tracer.hh"
#include "resil/core_fault_injector.hh"
#include "resil/fault_injector.hh"
#include "resil/invariants.hh"
#include "resil/noc_fault_injector.hh"
#include "resil/watchdog.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/tile_runtime.hh"

namespace misar {
namespace sys {

/** How a run() ended. */
enum class RunOutcome
{
    Finished,     ///< every started thread completed
    Deadlock,     ///< event queue drained with threads still blocked
    LimitReached, ///< tick budget exhausted (livelock or just slow)
};

/** Stable string form of @p o (run reports, logs). */
inline const char *
runOutcomeName(RunOutcome o)
{
    switch (o) {
      case RunOutcome::Finished:
        return "finished";
      case RunOutcome::Deadlock:
        return "deadlock";
      case RunOutcome::LimitReached:
        return "limit-reached";
    }
    return "?";
}

/**
 * A complete simulated chip. Construct, start one thread body per
 * core, then run().
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /** Start @p body on core @p c at the current tick. */
    void
    start(CoreId c, cpu::ThreadTask body)
    {
        cores[c]->start(std::move(body));
    }

    /** Run until every started thread finishes (or @p limit ticks).
     *  @return true if all threads finished. */
    bool run(Tick limit = maxTick)
    {
        return runDetailed(limit) == RunOutcome::Finished;
    }

    /**
     * run() distinguishing clean termination from a drained-but-
     * blocked event queue (deadlock) and from an exhausted tick
     * budget (livelock or long run). On deadlock the waits-for
     * report is logged before returning.
     */
    RunOutcome runDetailed(Tick limit = maxTick);

    cpu::ThreadApi api(CoreId c) { return cpu::ThreadApi(*cores[c]); }
    cpu::Core &core(CoreId c) { return *cores[c]; }
    msa::MsaSlice &msaSlice(CoreId t) { return *slices[t]; }
    mem::MemSystem &mem() { return *ms; }
    EventQueue &eventQueue() { return eq; }
    StatRegistry &stats() { return _stats; }
    const SystemConfig &config() const { return cfg; }
    unsigned numCores() const { return cfg.numCores; }
    /** Total hardware threads (== numCores unless SMT is enabled). */
    unsigned numThreads() const { return cfg.numThreads(); }

    /** True once every started thread has finished. */
    bool allFinished() const;

    /**
     * Human-readable stall report: per-thread outstanding operations,
     * per-slice entry state, and the waits-for edges between blocked
     * threads and lock owners (cycles flagged). Used by the liveness
     * watchdog and the deadlock path of runDetailed().
     */
    std::string buildStallReport() const;

    /** MSA client hub, or nullptr outside MSA modes. */
    msa::MsaClientHub *clientHub() { return hub; }
    const msa::MsaClientHub *clientHub() const { return hub; }

    /** Liveness watchdog, or nullptr when not configured. */
    resil::Watchdog *watchdog() { return wdog.get(); }

    /** NoC fault injector, or nullptr when no NoC faults are armed. */
    resil::NocFaultInjector *nocFaultInjector() { return nocInjector.get(); }

    /** Core fault injector, or nullptr when no kills are armed. */
    resil::CoreFaultInjector *coreFaultInjector() { return coreInjector.get(); }

    /**
     * True once the failure detector has declared @p thread dead
     * (kill tick + coreDetectDelay elapsed). The software sync
     * library's dead-participant query and the stall-report
     * attribution both key off this.
     */
    bool
    isDeclaredDead(CoreId thread) const
    {
        return thread < declaredDead.size() && declaredDead[thread];
    }

    /** Invariant checker, or nullptr when not configured. */
    resil::InvariantChecker *invariantChecker() { return checker.get(); }

    /** Latest finish tick over all cores (the parallel makespan). */
    Tick makespan() const;

    /** Fraction of sync operations handled in hardware [0, 1]. */
    double hwCoverage() const;

    /**
     * @name Mid-run stat reads. Under `--threads N` per-tile counts
     * live in shards until the run ends; these sum the global
     * registry plus every live shard. Master-lane only (samplers,
     * watchdog aux progress) — the workers are parked whenever
     * lane-0 code runs.
     * @{
     */
    std::uint64_t liveCounterSum(const std::string &name) const;
    std::uint64_t liveSuffixSum(const std::string &suffix) const;
    /** @} */

    /** Enable per-core operation tracing (see sim/trace.hh). */
    void enableTracing();

    /**
     * Write the trace as Chrome trace-event JSON. With the obs layer
     * enabled (cfg.obs.traceEnabled) this is the full multi-component
     * trace (cores + MSA slices + NoC, with sync flows); otherwise it
     * is the legacy per-core-only timeline.
     */
    void writeTrace(std::ostream &os) const;

    /** @name Observability components (null when not configured). @{ */
    obs::Tracer *tracer() { return _tracer.get(); }
    const obs::SyncProfiler *syncProfiler() const { return profiler.get(); }
    obs::StatSampler *sampler() { return _sampler.get(); }
    const obs::StatSampler *sampler() const { return _sampler.get(); }
    obs::ResourceMonitor *monitor() { return _monitor.get(); }
    const obs::ResourceMonitor *monitor() const { return _monitor.get(); }
    /** @} */

  private:
    /** Construct + wire cfg.obs-enabled components (ctor tail). */
    void applyObservability();

    /** Serial run loop (the pre-PDES kernel; `--threads 1`). */
    RunOutcome runSerial(Tick limit);

    /** PDES run loop: partitions the mesh over cfg.simThreads. */
    RunOutcome runParallel(Tick limit);

    /** Fold per-tile stat shards into _stats (end of a run). */
    void mergeShards();

    SystemConfig cfg;
    EventQueue eq;
    StatRegistry _stats;
    /** One queue per `--threads` partition (empty when serial). */
    std::vector<std::unique_ptr<EventQueue>> partQueues;
    /** One stat shard per tile (empty unless threads > 1). */
    std::vector<std::unique_ptr<StatRegistry>> statShards;
    /** Partition index per lane (lane 0 -> simThreads = global). */
    std::vector<unsigned> laneToPart;
    /** Tile -> queue/shard/lane routing handed to every component. */
    TileRuntime rt;
    std::unique_ptr<mem::MemSystem> ms;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    std::vector<std::unique_ptr<msa::MsaSlice>> slices;
    std::unique_ptr<cpu::SyncUnit> syncUnit;
    msa::MsaClientHub *hub = nullptr; // owned via syncUnit when MSA
    std::unique_ptr<resil::FaultInjector> injector;
    std::unique_ptr<resil::NocFaultInjector> nocInjector;
    std::unique_ptr<resil::CoreFaultInjector> coreInjector;
    /** Threads declared dead by the failure detector (by thread id). */
    std::vector<bool> declaredDead;
    std::unique_ptr<resil::Watchdog> wdog;
    std::unique_ptr<resil::InvariantChecker> checker;
    std::unique_ptr<obs::Tracer> _tracer;
    std::unique_ptr<obs::SyncProfiler> profiler;
    std::unique_ptr<obs::StatSampler> _sampler;
    std::unique_ptr<obs::ResourceMonitor> _monitor;
};

} // namespace sys
} // namespace misar

#endif // MISAR_SYSTEM_SYSTEM_HH
