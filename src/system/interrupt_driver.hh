/**
 * @file
 * OS timer-interrupt driver: periodically interrupts random cores so
 * the SUSPEND machinery (paper §4.1.2 / §4.2.2 / §4.3.2) is
 * exercised under load. A core interrupted while blocked in a
 * synchronization instruction is suspended per the paper's rules; an
 * interrupt at any other time is a no-op (the thread would simply be
 * rescheduled).
 */

#ifndef MISAR_SYSTEM_INTERRUPT_DRIVER_HH
#define MISAR_SYSTEM_INTERRUPT_DRIVER_HH

#include "sim/rng.hh"
#include "system/system.hh"

namespace misar {
namespace sys {

/** Delivers random timer interrupts until the system quiesces. */
class InterruptDriver
{
  public:
    /**
     * @param system  the chip to interrupt
     * @param period  mean cycles between interrupts (jittered 50-150%)
     * @param seed    determinism seed
     */
    InterruptDriver(System &system, Tick period, std::uint64_t seed)
        : system(system), period(period), rng(seed ? seed : 1)
    {
        scheduleNext();
    }

    std::uint64_t delivered() const { return _delivered; }

  private:
    void
    scheduleNext()
    {
        Tick delay = period / 2 + rng.range(period);
        system.eventQueue().schedule(delay, [this] { fire(); });
    }

    void
    fire()
    {
        bool all_done = true;
        for (CoreId c = 0; c < system.numCores(); ++c)
            all_done &= system.core(c).finished();
        if (all_done)
            return; // stop once the workload quiesces
        CoreId victim =
            static_cast<CoreId>(rng.range(system.numCores()));
        system.core(victim).interrupt();
        ++_delivered;
        scheduleNext();
    }

    System &system;
    Tick period;
    Rng rng;
    std::uint64_t _delivered = 0;
};

} // namespace sys
} // namespace misar

#endif // MISAR_SYSTEM_INTERRUPT_DRIVER_HH
