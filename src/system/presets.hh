/**
 * @file
 * The paper's evaluated configurations (§6): baseline pthread,
 * MSA-0, MCS-Tour, MSA/OMU-1, MSA/OMU-2, MSA-inf, and Ideal.
 */

#ifndef MISAR_SYSTEM_PRESETS_HH
#define MISAR_SYSTEM_PRESETS_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sync/sync_lib.hh"

namespace misar {
namespace sys {

/** One column of the paper's evaluation figures. */
enum class PaperConfig
{
    Baseline, ///< pthread software library, no sync instructions
    Msa0,     ///< hybrid library, always-FAIL hardware
    McsTour,  ///< MCS locks + tournament barrier software library
    MsaOmu1,  ///< hybrid library, 1-entry MSA with OMU
    MsaOmu2,  ///< hybrid library, 2-entry MSA with OMU
    MsaOmu4,  ///< hybrid library, 4-entry MSA with OMU (Fig 9 note)
    MsaInf,   ///< hybrid library, unbounded MSA
    Ideal,    ///< hybrid library, zero-latency oracle
    Spinlock, ///< raw test-and-set spinlock library (Figure 5)
    /** MSA/OMU-2 under the resilience fault campaign: message
     *  drops/dups/delays plus tile 0's slice decommissioned mid-run,
     *  with the watchdog and invariant checker armed. */
    MsaOmu2Faults,
    /** MSA/OMU-2 under the NoC fault campaign: end-to-end reliable
     *  delivery on, transient packet corruption throughout, and one
     *  mesh link killed mid-run (rerouted via up-down tables),
     *  with the watchdog and invariant checker armed. */
    MsaOmu2NocFaults,
    /** MSA/OMU-2 under the participant fault campaign: one core
     *  halted dead mid-run (wherever it happens to be — possibly
     *  holding a hardware lock inside a barrier), lease-based lock
     *  recovery armed, dead-core declaration reconfiguring barrier
     *  membership, with the watchdog and invariant checker armed. */
    MsaOmu2CoreFaults,
};

/** All configurations shown in Figure 6, in plot order. */
constexpr PaperConfig fig6Configs[] = {
    PaperConfig::Msa0,    PaperConfig::McsTour, PaperConfig::MsaOmu1,
    PaperConfig::MsaOmu2, PaperConfig::MsaInf,  PaperConfig::Ideal,
};

/** System configuration for @p pc with @p cores cores. */
SystemConfig configFor(PaperConfig pc, unsigned cores);

/** Synchronization library flavor used with @p pc. */
sync::SyncLib::Flavor flavorFor(PaperConfig pc);

/** Display name matching the paper's figures. */
const char *paperConfigName(PaperConfig pc);

/**
 * CLI preset names accepted by misar_sim --config and by campaign
 * specs: baseline, msa0, mcs-tour, spinlock, msa-omu, msa-inf,
 * ideal, msa-omu-faults, msa-omu2-nocfaults, msa-omu2-corefaults,
 * msa256, msa1024 (the scale-study meshes; these pin the core
 * count). One name per line from `misar_sim --list-presets`.
 */
const std::vector<std::string> &cliPresetNames();

/**
 * Resolve CLI preset @p name into a system configuration and sync
 * library flavor. @p entries sets msa.msaEntries (meaningful for the
 * MSA presets; ignored where the preset fixes it). Returns false on
 * an unknown name, leaving the outputs untouched. The returned
 * config is not yet validate()d — callers apply their own overrides
 * (seed, SMT, hwsync/omu toggles) first.
 */
bool cliPresetFor(const std::string &name, unsigned cores,
                  unsigned entries, SystemConfig &cfg,
                  sync::SyncLib::Flavor &flavor);

} // namespace sys
} // namespace misar

#endif // MISAR_SYSTEM_PRESETS_HH
