#include "system/presets.hh"

namespace misar {
namespace sys {

SystemConfig
configFor(PaperConfig pc, unsigned cores)
{
    switch (pc) {
      case PaperConfig::Baseline:
      case PaperConfig::McsTour:
      case PaperConfig::Msa0:
      case PaperConfig::Spinlock:
        return makeConfig(cores, AccelMode::None);
      case PaperConfig::MsaOmu1:
        return makeConfig(cores, AccelMode::MsaOmu, 1);
      case PaperConfig::MsaOmu2:
        return makeConfig(cores, AccelMode::MsaOmu, 2);
      case PaperConfig::MsaOmu4:
        return makeConfig(cores, AccelMode::MsaOmu, 4);
      case PaperConfig::MsaInf:
        return makeConfig(cores, AccelMode::MsaInfinite);
      case PaperConfig::Ideal:
        return makeConfig(cores, AccelMode::Ideal);
    }
    return makeConfig(cores, AccelMode::None);
}

sync::SyncLib::Flavor
flavorFor(PaperConfig pc)
{
    switch (pc) {
      case PaperConfig::Baseline:
        return sync::SyncLib::Flavor::PthreadSw;
      case PaperConfig::McsTour:
        return sync::SyncLib::Flavor::McsTourSw;
      case PaperConfig::Spinlock:
        return sync::SyncLib::Flavor::SpinSw;
      default:
        return sync::SyncLib::Flavor::Hw;
    }
}

const char *
paperConfigName(PaperConfig pc)
{
    switch (pc) {
      case PaperConfig::Baseline:
        return "Baseline(pthread)";
      case PaperConfig::Msa0:
        return "MSA-0";
      case PaperConfig::McsTour:
        return "MCS-Tour";
      case PaperConfig::MsaOmu1:
        return "MSA/OMU-1";
      case PaperConfig::MsaOmu2:
        return "MSA/OMU-2";
      case PaperConfig::MsaOmu4:
        return "MSA/OMU-4";
      case PaperConfig::MsaInf:
        return "MSA-inf";
      case PaperConfig::Ideal:
        return "Ideal";
      case PaperConfig::Spinlock:
        return "Spinlock";
    }
    return "?";
}

} // namespace sys
} // namespace misar
