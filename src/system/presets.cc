#include "system/presets.hh"

namespace misar {
namespace sys {

SystemConfig
configFor(PaperConfig pc, unsigned cores)
{
    switch (pc) {
      case PaperConfig::Baseline:
      case PaperConfig::McsTour:
      case PaperConfig::Msa0:
      case PaperConfig::Spinlock:
        return makeConfig(cores, AccelMode::None);
      case PaperConfig::MsaOmu1:
        return makeConfig(cores, AccelMode::MsaOmu, 1);
      case PaperConfig::MsaOmu2:
        return makeConfig(cores, AccelMode::MsaOmu, 2);
      case PaperConfig::MsaOmu4:
        return makeConfig(cores, AccelMode::MsaOmu, 4);
      case PaperConfig::MsaInf:
        return makeConfig(cores, AccelMode::MsaInfinite);
      case PaperConfig::Ideal:
        return makeConfig(cores, AccelMode::Ideal);
      case PaperConfig::MsaOmu2Faults: {
        SystemConfig cfg;
        cfg.numCores = cores;
        cfg.msa.mode = AccelMode::MsaOmu;
        cfg.msa.msaEntries = 2;
        // Fault rates chosen so a lost message is an inconvenience
        // (one short timeout), not a catastrophe: the timeout is a
        // small multiple of the worst-case NoC round trip, which is
        // what a real deployment would provision.
        cfg.resil.dropProb = 0.005;
        cfg.resil.dupProb = 0.01;
        cfg.resil.delayProb = 0.03;
        cfg.resil.delayTicks = 80;
        cfg.resil.timeoutTicks = 1000;
        cfg.resil.maxRetries = 8;
        cfg.resil.offlineTile = 0;
        cfg.resil.offlineAtTick = 60000;
        cfg.resil.watchdogInterval = 2000000;
        cfg.resil.invariantChecks = true;
        cfg.resil.invariantInterval = 100000;
        cfg.validate();
        return cfg;
      }
      case PaperConfig::MsaOmu2NocFaults: {
        SystemConfig cfg;
        cfg.numCores = cores;
        cfg.msa.mode = AccelMode::MsaOmu;
        cfg.msa.msaEntries = 2;
        // Transport faults instead of PR 1's message faults: the NI
        // reliable-delivery layer absorbs transient corruption, and
        // the routers reroute around the dead link; the MSA-level
        // timeout ladder stays armed as the backstop for anything
        // the transport abandons.
        cfg.noc.reliable = true;
        cfg.resil.flitCorruptProb = 3e-4;
        cfg.resil.linkKills.push_back({0, 1, 30000});
        cfg.resil.timeoutTicks = 1000;
        cfg.resil.maxRetries = 8;
        cfg.resil.watchdogInterval = 2000000;
        cfg.resil.invariantChecks = true;
        cfg.resil.invariantInterval = 100000;
        cfg.validate();
        return cfg;
      }
      case PaperConfig::MsaOmu2CoreFaults: {
        SystemConfig cfg;
        cfg.numCores = cores;
        cfg.msa.mode = AccelMode::MsaOmu;
        cfg.msa.msaEntries = 2;
        // One participant halts dead mid-run. The kill tick lands the
        // victim inside the benchmarks' steady state, where it is
        // likely to hold a hardware lock or sit inside a barrier.
        // Lease expiry recovers what it held; the declaration (kill +
        // detect delay) recovers what it would never deliver (barrier
        // arrivals, queued waits). The client timeout ladder stays
        // armed so the corpse's peers keep retrying past transient
        // confusion instead of wedging on one lost grant.
        cfg.resil.coreKills.push_back({5, 25000});
        cfg.resil.leaseTicks = 4000;
        cfg.resil.leaseProbeTimeout = 1500;
        cfg.resil.coreDetectDelay = 6000;
        cfg.resil.timeoutTicks = 1000;
        cfg.resil.maxRetries = 8;
        cfg.resil.watchdogInterval = 2000000;
        cfg.resil.invariantChecks = true;
        cfg.resil.invariantInterval = 100000;
        cfg.validate();
        return cfg;
      }
    }
    return makeConfig(cores, AccelMode::None);
}

sync::SyncLib::Flavor
flavorFor(PaperConfig pc)
{
    switch (pc) {
      case PaperConfig::Baseline:
        return sync::SyncLib::Flavor::PthreadSw;
      case PaperConfig::McsTour:
        return sync::SyncLib::Flavor::McsTourSw;
      case PaperConfig::Spinlock:
        return sync::SyncLib::Flavor::SpinSw;
      default:
        return sync::SyncLib::Flavor::Hw;
    }
}

const std::vector<std::string> &
cliPresetNames()
{
    static const std::vector<std::string> names = {
        "baseline", "msa0",    "mcs-tour", "spinlock",
        "msa-omu",  "msa-inf", "ideal",    "msa-omu-faults",
        "msa-omu2-nocfaults", "msa-omu2-corefaults",
        "msa256",   "msa1024",
    };
    return names;
}

bool
cliPresetFor(const std::string &name, unsigned cores, unsigned entries,
             SystemConfig &cfg, sync::SyncLib::Flavor &flavor)
{
    AccelMode mode;
    sync::SyncLib::Flavor fl = sync::SyncLib::Flavor::Hw;
    if (name == "msa-omu-faults") {
        cfg = configFor(PaperConfig::MsaOmu2Faults, cores);
        cfg.msa.msaEntries = entries;
        flavor = sync::SyncLib::Flavor::Hw;
        return true;
    } else if (name == "msa-omu2-nocfaults") {
        cfg = configFor(PaperConfig::MsaOmu2NocFaults, cores);
        cfg.msa.msaEntries = entries;
        flavor = sync::SyncLib::Flavor::Hw;
        return true;
    } else if (name == "msa-omu2-corefaults") {
        cfg = configFor(PaperConfig::MsaOmu2CoreFaults, cores);
        cfg.msa.msaEntries = entries;
        flavor = sync::SyncLib::Flavor::Hw;
        return true;
    } else if (name == "msa256" || name == "msa1024") {
        // Scale-study meshes (roadmap item 1; paper §6 projects past
        // its 64-core evaluation). The preset pins the core count —
        // the --cores flag is ignored. Per-slice sizing follows the
        // paper: MSA entries and OMU counters are per tile and do NOT
        // grow with the mesh; what grows is the NoC, so the input
        // buffers deepen (absorbing the longer-haul congestion of a
        // 16x16 / 32x32 mesh) and the end-to-end retransmission
        // timeout is provisioned off the worst-case round trip
        // (~4 * meshDim * (router + link) cycles plus queueing),
        // mirroring how the fault presets provision theirs.
        const bool big = name == "msa1024";
        cfg = makeConfig(big ? 1024 : 256, AccelMode::MsaOmu, entries);
        cfg.noc.bufferDepth = big ? 32 : 16;
        cfg.noc.retransmitTimeout = big ? 2400 : 1200;
        flavor = sync::SyncLib::Flavor::Hw;
        return true;
    } else if (name == "baseline") {
        mode = AccelMode::None;
        fl = sync::SyncLib::Flavor::PthreadSw;
    } else if (name == "msa0") {
        mode = AccelMode::None;
    } else if (name == "mcs-tour") {
        mode = AccelMode::None;
        fl = sync::SyncLib::Flavor::McsTourSw;
    } else if (name == "spinlock") {
        mode = AccelMode::None;
        fl = sync::SyncLib::Flavor::SpinSw;
    } else if (name == "msa-omu") {
        mode = AccelMode::MsaOmu;
    } else if (name == "msa-inf") {
        mode = AccelMode::MsaInfinite;
    } else if (name == "ideal") {
        mode = AccelMode::Ideal;
    } else {
        return false;
    }
    cfg = makeConfig(cores, mode, entries);
    flavor = fl;
    return true;
}

const char *
paperConfigName(PaperConfig pc)
{
    switch (pc) {
      case PaperConfig::Baseline:
        return "Baseline(pthread)";
      case PaperConfig::Msa0:
        return "MSA-0";
      case PaperConfig::McsTour:
        return "MCS-Tour";
      case PaperConfig::MsaOmu1:
        return "MSA/OMU-1";
      case PaperConfig::MsaOmu2:
        return "MSA/OMU-2";
      case PaperConfig::MsaOmu4:
        return "MSA/OMU-4";
      case PaperConfig::MsaInf:
        return "MSA-inf";
      case PaperConfig::Ideal:
        return "Ideal";
      case PaperConfig::Spinlock:
        return "Spinlock";
      case PaperConfig::MsaOmu2Faults:
        return "MSA/OMU-2+faults";
      case PaperConfig::MsaOmu2NocFaults:
        return "MSA/OMU-2+nocfaults";
      case PaperConfig::MsaOmu2CoreFaults:
        return "MSA/OMU-2+corefaults";
    }
    return "?";
}

} // namespace sys
} // namespace misar
