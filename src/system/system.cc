#include "system/system.hh"

#include "sim/logging.hh"

namespace misar {
namespace sys {

System::System(const SystemConfig &cfg_in) : cfg(cfg_in)
{
    cfg.validate();
    ms = std::make_unique<mem::MemSystem>(eq, cfg, _stats);

    const bool has_msa = cfg.msa.mode == AccelMode::MsaOmu ||
                         cfg.msa.mode == AccelMode::MsaInfinite;

    if (has_msa) {
        auto hub_owner =
            std::make_unique<msa::MsaClientHub>(eq, cfg, *ms, _stats);
        hub = hub_owner.get();
        syncUnit = std::move(hub_owner);

        auto send_fn = [this](std::shared_ptr<msa::MsaMsg> m) {
            ms->send(std::move(m));
        };
        for (CoreId t = 0; t < cfg.numCores; ++t) {
            slices.push_back(std::make_unique<msa::MsaSlice>(
                eq, cfg, t, ms->home(t), send_fn, _stats));
        }
        ms->setOtherSink([this](CoreId tile,
                                std::shared_ptr<noc::Packet> pkt) {
            auto mm = std::dynamic_pointer_cast<msa::MsaMsg>(pkt);
            if (!mm)
                panic("tile %u: unknown packet class", tile);
            if (msa::isClientBound(mm->op)) {
                // Client-bound responses name the hardware thread.
                CoreId thread = mm->requester;
                if (thread == invalidCore)
                    thread = tile; // defensive: 1-thread-per-core
                hub->handleMessage(thread, mm);
            } else {
                slices[tile]->handleMessage(std::move(mm));
            }
        });
    } else if (cfg.msa.mode == AccelMode::Ideal) {
        syncUnit = std::make_unique<msa::IdealSyncUnit>(_stats);
    } else {
        syncUnit = std::make_unique<msa::NullSyncUnit>(_stats);
    }

    for (CoreId t = 0; t < cfg.numThreads(); ++t) {
        cores.push_back(std::make_unique<cpu::Core>(
            eq, cfg.core, t, ms->l1(cfg.tileOf(t)), _stats));
        cores.back()->setSyncUnit(syncUnit.get());
    }
}

bool
System::run(Tick limit)
{
    // Run in slices so we can stop as soon as all threads are done
    // (background NoC/coherence events may still be queued).
    const Tick chunk = 10000;
    const Tick start = eq.now();
    const Tick deadline = (limit == maxTick) ? maxTick : start + limit;
    for (;;) {
        Tick until = (deadline - eq.now() < chunk) ? deadline
                                                   : eq.now() + chunk;
        eq.runUntil(until);
        bool all_done = true;
        for (auto &c : cores)
            all_done &= c->finished();
        if (all_done)
            return true;
        if (eq.empty())
            return false; // queue empty but threads blocked: deadlock
        if (eq.now() >= deadline)
            return false;
    }
}

Tick
System::makespan() const
{
    Tick m = 0;
    for (auto &c : cores)
        m = std::max(m, c->finishTick());
    return m;
}

void
System::enableTracing()
{
    for (auto &c : cores)
        c->trace().setEnabled(true);
}

void
System::writeTrace(std::ostream &os) const
{
    std::vector<const TraceBuffer *> bufs;
    for (auto &c : cores)
        bufs.push_back(&c->trace());
    writeChromeTrace(os, bufs);
}

double
System::hwCoverage() const
{
    double hw = static_cast<double>(_stats.sumCounters("sync.hwOps"));
    double sw = static_cast<double>(_stats.sumCounters("sync.swOps"));
    return (hw + sw) > 0 ? hw / (hw + sw) : 0.0;
}

} // namespace sys
} // namespace misar
