#include "system/system.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace misar {
namespace sys {

System::System(const SystemConfig &cfg_in) : cfg(cfg_in)
{
    cfg.validate();
    if (cfg.resil.nocFaultsEnabled() && !cfg.noc.reliable) {
        // Without end-to-end retransmission a lost coherence or
        // memory message wedges the chip; faults imply reliability.
        warn("NoC faults configured without noc.reliable; "
             "enabling reliable delivery");
        cfg.noc.reliable = true;
    }

    // --- event lanes + PDES partitioning ---------------------------
    // Lanes are on whenever the mode supports them (everything but
    // Ideal), including --threads 1: the lane-ordered trajectory is
    // what makes a threaded run stats-identical to a serial one.
    eq.setNumLanes(cfg.laneCount());
    rt.tileLanes = cfg.tileLanes();
    if (cfg.simThreads > 1) {
        const unsigned P = cfg.simThreads;
        laneToPart.assign(cfg.laneCount(), P); // lane 0 -> global
        for (unsigned p = 0; p < P; ++p) {
            partQueues.push_back(std::make_unique<EventQueue>());
            partQueues.back()->setNumLanes(cfg.laneCount());
        }
        rt.queues.resize(cfg.numCores);
        rt.shards.resize(cfg.numCores);
        for (CoreId t = 0; t < cfg.numCores; ++t) {
            const unsigned p = static_cast<unsigned>(
                (static_cast<std::uint64_t>(t) * P) / cfg.numCores);
            rt.queues[t] = partQueues[p].get();
            laneToPart[cfg.laneOf(t)] = p;
            statShards.push_back(std::make_unique<StatRegistry>());
            rt.shards[t] = statShards.back().get();
        }
    }

    ms = std::make_unique<mem::MemSystem>(eq, cfg, _stats, rt);
    if (cfg.simThreads > 1)
        ms->fmem().enableLocking();

    const bool has_msa = cfg.msa.mode == AccelMode::MsaOmu ||
                         cfg.msa.mode == AccelMode::MsaInfinite;

    if (has_msa) {
        auto hub_owner =
            std::make_unique<msa::MsaClientHub>(eq, cfg, *ms, _stats, &rt);
        hub = hub_owner.get();
        syncUnit = std::move(hub_owner);

        auto send_fn = [this](std::shared_ptr<msa::MsaMsg> m) {
            ms->send(std::move(m));
        };
        for (CoreId t = 0; t < cfg.numCores; ++t) {
            slices.push_back(std::make_unique<msa::MsaSlice>(
                rt.eqFor(t, eq), cfg, t, ms->home(t), send_fn,
                rt.statsFor(t, _stats)));
            slices.back()->setLane(rt.laneOf(t));
            // Push/revoke traffic must follow an address's *home*
            // directory, not the slice's own tile: after a slice
            // failover the buddy serves variables whose cached copies
            // are still tracked by the original (alive) home tile.
            slices.back()->setHomeLookup(
                [this](Addr block) -> mem::HomeSlice & {
                    return ms->homeOf(block);
                });
        }
        ms->setOtherSink([this](CoreId tile,
                                std::shared_ptr<noc::Packet> pkt) {
            auto mm = std::dynamic_pointer_cast<msa::MsaMsg>(pkt);
            if (!mm)
                panic("tile %u: unknown packet class", tile);
            if (msa::isClientBound(mm->op)) {
                // Client-bound responses name the hardware thread.
                CoreId thread = mm->requester;
                if (thread == invalidCore)
                    thread = tile; // defensive: 1-thread-per-core
                hub->handleMessage(thread, mm);
            } else {
                slices[tile]->handleMessage(std::move(mm));
            }
        });
    } else if (cfg.msa.mode == AccelMode::Ideal) {
        syncUnit = std::make_unique<msa::IdealSyncUnit>(_stats);
    } else {
        syncUnit = std::make_unique<msa::NullSyncUnit>(_stats, &rt,
                                                       cfg.smtWays);
    }

    for (CoreId t = 0; t < cfg.numThreads(); ++t) {
        const CoreId tile = cfg.tileOf(t);
        cores.push_back(std::make_unique<cpu::Core>(
            rt.eqFor(tile, eq), cfg.core, t, ms->l1(tile),
            rt.statsFor(tile, _stats)));
        cores.back()->setLane(rt.laneOf(tile));
        cores.back()->setSyncUnit(syncUnit.get());
    }

    // --- resilience wiring (all no-ops under the default config) ---

    if (cfg.resil.messageFaultsEnabled() && has_msa) {
        injector = std::make_unique<resil::FaultInjector>(
            eq, cfg.resil, cfg.numCores, _stats,
            [this](std::shared_ptr<noc::Packet> p) {
                ms->sendDirect(std::move(p));
            },
            &rt);
        ms->setSendInterceptor([this](
                const std::shared_ptr<noc::Packet> &p) {
            return injector->intercept(p);
        });
    }

    if (cfg.resil.offlineTile >= 0 && has_msa) {
        CoreId t = static_cast<CoreId>(cfg.resil.offlineTile);
        if (cfg.resil.failoverBuddy >= 0) {
            // Slice failover: instead of shedding its live variables
            // to software, the dying slice serializes them into a
            // state-handoff message for the buddy, then forwards all
            // later traffic there. The buddy queues anything that
            // overtakes the handoff (vnet reordering) until the state
            // arrives.
            CoreId b = static_cast<CoreId>(cfg.resil.failoverBuddy);
            eq.scheduleAt(cfg.resil.offlineAtTick, [this, t, b] {
                slices[b]->expectHandoff(t);
                slices[t]->failoverTo(b);
            });
        } else {
            eq.scheduleAt(cfg.resil.offlineAtTick,
                          [this, t] { slices[t]->goOffline(); });
        }
    }

    if (cfg.resil.coreFaultsEnabled()) {
        declaredDead.assign(cfg.numThreads(), false);
        coreInjector = std::make_unique<resil::CoreFaultInjector>(
            eq, cfg.resil, _stats);
        coreInjector->setKillFn([this](unsigned c) {
            if (c < cores.size())
                cores[c]->kill();
            if (hub)
                hub->killCore(c);
        });
        coreInjector->setDeclareFn([this](unsigned c) {
            if (c < declaredDead.size())
                declaredDead[c] = true;
            // Every slice learns of the death: barrier membership
            // drops the corpse, its held locks are revoked under
            // epoch fencing, queued waits are discarded.
            for (auto &s : slices)
                s->coreDeclaredDead(c);
        });
        coreInjector->start();
    }

    if (cfg.resil.watchdogInterval > 0) {
        wdog = std::make_unique<resil::Watchdog>(
            eq, cfg.resil.watchdogInterval, _stats, cfg.numThreads());
        for (CoreId c = 0; c < cores.size(); ++c)
            cores[c]->setProgressCell(wdog->progressCell(c));
        wdog->setReportFn([this] { return buildStallReport(); });
        wdog->setDoneFn([this] { return allFinished(); });
        wdog->start();
    }

    if (cfg.resil.nocFaultsEnabled()) {
        nocInjector = std::make_unique<resil::NocFaultInjector>(
            eq, cfg.resil, ms->mesh(), _stats);
        nocInjector->setPartitionFn([this, has_msa](unsigned tile) {
            _stats.counter("resil.partitionSheds").inc();
            if (has_msa && tile < slices.size() &&
                !slices[tile]->isOffline()) {
                // Reuse the offline-shed path: entries migrate to
                // software and new requests are refused. Messages
                // the shed sends towards the lost partition are
                // dropped at the dead hardware; their recipients
                // are unreachable anyway.
                slices[tile]->goOffline();
            }
            if (hub)
                hub->markHomeUnreachable(tile);
        });
        nocInjector->start();

        if (wdog) {
            // A partitioned mesh stalls threads without being a
            // protocol deadlock: report, attribute, and keep going
            // so in-process campaigns and benches can classify the
            // outcome instead of dying on fatal().
            wdog->setStallHandler([this](const std::string &rep) {
                warn("%s", rep.c_str());
                warn("liveness watchdog: stall under NoC faults "
                     "(%llu stranded tiles); continuing to drain",
                     static_cast<unsigned long long>(
                         _stats.counterValue("resil.strandedTiles")));
                _stats.counter("resil.watchdogNocStalls").inc();
            });
            // Packets delivered, dropped, or retransmitted through a
            // degraded mesh are progress: merely-detoured traffic
            // must not be classified as deadlock.
            wdog->setAuxProgressFn([this] {
                return liveCounterSum("noc.packetsRecv") +
                       liveCounterSum("noc.flitsDropped") +
                       liveCounterSum("noc.rel.retransmits");
            });
        }
    }

    if (wdog && cfg.resil.coreFaultsEnabled() &&
        !cfg.resil.nocFaultsEnabled()) {
        // Peers of a corpse stall until the lease machinery and the
        // dead declaration reconfigure around it — and a victim that
        // died holding a *software* lock wedges its waiters forever.
        // Either way the run should be classified (finished /
        // deadlock / limit), not aborted by fatal(): report,
        // attribute, keep draining.
        wdog->setStallHandler([this](const std::string &rep) {
            warn("%s", rep.c_str());
            warn("liveness watchdog: stall under core faults "
                 "(%llu kill(s)); continuing to drain",
                 static_cast<unsigned long long>(
                     _stats.counterValue("resil.coreKills")));
            _stats.counter("resil.watchdogCoreStalls").inc();
        });
    }

    if (cfg.resil.invariantChecks && has_msa) {
        checker = std::make_unique<resil::InvariantChecker>(
            *this, cfg.resil.invariantInterval, _stats);
        checker->start();
    }

    applyObservability();
}

void
System::applyObservability()
{
    const ObsConfig &o = cfg.obs;
    if (!o.anyEnabled())
        return;

    if (o.traceEnabled) {
        _tracer = std::make_unique<obs::Tracer>(_stats, o.traceMaxEvents);
        enableTracing();
        for (auto &c : cores)
            c->trace().setCap(o.traceMaxEvents);
        if (o.traceNoc) {
            for (CoreId t = 0; t < cfg.numCores; ++t) {
                obs::TrackId tk = _tracer->addTrack(
                    obs::pidNoc, t, "ni " + std::to_string(t));
                ms->mesh().ni(t).attachTracer(_tracer.get(), tk);
            }
        }
        // L1 snoop anomalies land on the row of the tile's first
        // hardware thread (the L1 is shared by its SMT siblings).
        for (CoreId t = 0; t < cfg.numCores; ++t) {
            const unsigned tid = t * cfg.smtWays;
            obs::TrackId tk = _tracer->addTrack(
                obs::pidCores, tid, "core " + std::to_string(tid));
            ms->l1(t).attachTracer(_tracer.get(), tk);
        }
    }
    if (o.profileSync)
        profiler = std::make_unique<obs::SyncProfiler>();

    if (_tracer || profiler) {
        if (hub)
            hub->attachObservers(_tracer.get(), profiler.get());
        for (auto &s : slices)
            s->attachObservers(_tracer.get(), profiler.get());
    }

    if (o.heatmapEnabled) {
        _monitor = std::make_unique<obs::ResourceMonitor>(o.sampleInterval);
        _monitor->attachTracer(_tracer.get()); // null when tracing is off
        for (std::size_t t = 0; t < slices.size(); ++t) {
            msa::MsaSlice *s = slices[t].get();
            s->attachMonitor(_monitor.get());
            const std::string n = "slice" + std::to_string(t);
            const unsigned tid = static_cast<unsigned>(t);
            _monitor->addGauge(n + ".occupancy", "msaOccupancy",
                               obs::pidMsa, tid, [s] {
                                   return double(s->validEntries());
                               });
            _monitor->addGauge(n + ".free", "msaFree", obs::pidMsa, tid,
                               [s] { return double(s->freeEntries()); });
            for (unsigned i = 0; i < s->omu().numCounters(); ++i)
                _monitor->addGauge(n + ".omu" + std::to_string(i), "omu",
                                   obs::pidMsa, tid, [s, i] {
                                       return double(s->omu().countAt(i));
                                   });
        }
        static const struct
        {
            noc::Port port;
            const char *name;
        } outs[] = {
            {noc::portNorth, "north"},
            {noc::portEast, "east"},
            {noc::portSouth, "south"},
            {noc::portWest, "west"},
        };
        for (CoreId t = 0; t < cfg.numCores; ++t) {
            noc::NetworkInterface &ni = ms->mesh().ni(t);
            _monitor->addGauge("ni" + std::to_string(t) + ".queue",
                               "niQueue", obs::pidNoc, t, [&ni] {
                                   return double(ni.injectQueueDepth());
                               });
            noc::Router &r = ms->mesh().router(t);
            for (const auto &o2 : outs) {
                const noc::Port p = o2.port;
                _monitor->addGauge("router" + std::to_string(t) + "." +
                                       o2.name,
                                   "nocLink", obs::pidNoc, t, [&r, p] {
                                       return double(r.forwardedFlits(p));
                                   });
            }
        }
    }

    if (o.sampleInterval > 0) {
        _sampler = std::make_unique<obs::StatSampler>(eq, o.sampleInterval);
        auto cnt = [this](const char *name) {
            return [this, name] {
                return static_cast<double>(liveCounterSum(name));
            };
        };
        auto pooled = [this](const char *suffix) {
            return [this, suffix] {
                return static_cast<double>(liveSuffixSum(suffix));
            };
        };
        _sampler->addProbe("syncHwOps", cnt("sync.hwOps"));
        _sampler->addProbe("syncSwOps", cnt("sync.swOps"));
        _sampler->addProbe("silentLocks", cnt("sync.silentLocks"));
        _sampler->addProbe("abortedOps", cnt("sync.abortedOps"));
        _sampler->addProbe("nocPacketsSent", cnt("noc.packetsSent"));
        _sampler->addProbe("msaAllocations", pooled(".msa.allocations"));
        _sampler->addProbe("msaEvictions", pooled(".msa.evictions"));
        _sampler->addProbe("crossedSnoops", pooled(".l1.crossedSnoops"));
        _sampler->addProbe("resilTimeouts", cnt("resil.timeouts"));
        _sampler->addProbe("resilRetries", cnt("resil.retries"));
        _sampler->setDoneFn([this] { return allFinished(); });
        if (_monitor)
            _sampler->addObserver(
                [m = _monitor.get()](Tick now) { m->sample(now); });
        _sampler->start();
    }
}

bool
System::allFinished() const
{
    for (auto &c : cores)
        if (!c->finished())
            return false;
    return true;
}

RunOutcome
System::runDetailed(Tick limit)
{
    const RunOutcome o = cfg.simThreads > 1 ? runParallel(limit)
                                            : runSerial(limit);
    mergeShards();
    return o;
}

void
System::mergeShards()
{
    // Order-independent fold (counters add, averages fold moments,
    // histograms add bucket-wise), so totals match a serial run no
    // matter how tiles were partitioned. Shards reset afterwards:
    // a later runDetailed() merge must not double-count.
    for (auto &s : statShards) {
        _stats.mergeFrom(*s);
        s->reset();
    }
}

std::uint64_t
System::liveCounterSum(const std::string &name) const
{
    std::uint64_t v = _stats.counterValue(name);
    for (const auto &s : statShards)
        v += s->counterValue(name);
    return v;
}

std::uint64_t
System::liveSuffixSum(const std::string &suffix) const
{
    std::uint64_t v = _stats.sumCountersSuffix(suffix);
    for (const auto &s : statShards)
        v += s->sumCountersSuffix(suffix);
    return v;
}

RunOutcome
System::runParallel(Tick limit)
{
    std::vector<EventQueue *> pq;
    for (auto &q : partQueues)
        pq.push_back(q.get());
    ParallelEngine engine(eq, std::move(pq), laneToPart);

    // Mirror runSerial exactly: same chunking, same stop checks at
    // the same boundaries — that equivalence is what the determinism
    // suite pins (threads N stats-identical to threads 1).
    const Tick chunk = 10000;
    const Tick start = eq.now();
    const Tick deadline = (limit == maxTick) ? maxTick : start + limit;
    for (;;) {
        Tick until = (deadline - eq.now() < chunk) ? deadline
                                                   : eq.now() + chunk;
        engine.runUntil(until);
        if (allFinished()) {
            if (checker) {
                engine.drainAll();
                checker->atQuiesce();
            }
            return RunOutcome::Finished;
        }
        std::size_t maint =
            (wdog ? wdog->pendingMaintenance() : 0u) +
            (checker ? checker->pendingMaintenance() : 0u) +
            (_sampler ? _sampler->pendingMaintenance() : 0u);
        if (engine.pending() <= maint) {
            warn("event queue drained with threads still blocked "
                 "(deadlock) at tick %llu",
                 static_cast<unsigned long long>(eq.now()));
            warn("%s", buildStallReport().c_str());
            return RunOutcome::Deadlock;
        }
        if (eq.now() >= deadline)
            return RunOutcome::LimitReached;
    }
}

RunOutcome
System::runSerial(Tick limit)
{
    // Run in slices so we can stop as soon as all threads are done
    // (background NoC/coherence events may still be queued).
    const Tick chunk = 10000;
    const Tick start = eq.now();
    const Tick deadline = (limit == maxTick) ? maxTick : start + limit;
    for (;;) {
        Tick until = (deadline - eq.now() < chunk) ? deadline
                                                   : eq.now() + chunk;
        eq.runUntil(until);
        if (allFinished()) {
            if (checker) {
                // Settle in-flight background traffic so the strict
                // end-state checks see a quiesced system. Safe: the
                // interrupt driver, watchdog, and checker all stop
                // once every thread has finished.
                eq.run();
                checker->atQuiesce();
            }
            return RunOutcome::Finished;
        }
        // Maintenance self-rescheduling events (watchdog/checker/
        // sampler) must not mask a dead system.
        std::size_t maint =
            (wdog ? wdog->pendingMaintenance() : 0u) +
            (checker ? checker->pendingMaintenance() : 0u) +
            (_sampler ? _sampler->pendingMaintenance() : 0u);
        if (eq.pending() <= maint) {
            warn("event queue drained with threads still blocked "
                 "(deadlock) at tick %llu",
                 static_cast<unsigned long long>(eq.now()));
            warn("%s", buildStallReport().c_str());
            return RunOutcome::Deadlock;
        }
        if (eq.now() >= deadline)
            return RunOutcome::LimitReached;
    }
}

Tick
System::makespan() const
{
    Tick m = 0;
    for (auto &c : cores)
        m = std::max(m, c->finishTick());
    return m;
}

void
System::enableTracing()
{
    for (auto &c : cores)
        c->trace().setEnabled(true);
}

void
System::writeTrace(std::ostream &os) const
{
    std::vector<const TraceBuffer *> bufs;
    for (auto &c : cores)
        bufs.push_back(&c->trace());
    if (_tracer)
        _tracer->write(os, bufs);
    else
        writeChromeTrace(os, bufs);
}

std::string
System::buildStallReport() const
{
    std::ostringstream os;
    os << "=== stall report @ tick " << eq.now()
       << " (pending events: " << eq.pending() << ") ===\n";

    // Per-thread outstanding operations.
    struct Blocked { CoreId core; Addr addr; };
    std::vector<Blocked> blocked;
    for (CoreId c = 0; c < cfg.numThreads(); ++c) {
        if (cores[c]->finished())
            continue;
        os << "  thread " << static_cast<unsigned>(c) << ": running";
        if (hub) {
            auto s = hub->snapshot(c);
            if (s.active) {
                os << ", blocked in " << cpu::syncInstrName(s.instr)
                   << " @ 0x" << std::hex << s.addr << std::dec
                   << " since tick " << s.issuedAt
                   << " (waited " << (eq.now() - s.issuedAt)
                   << ", retries " << s.retries
                   << (s.interrupted ? ", interrupted" : "") << ")";
                if (s.instr == cpu::SyncInstr::Lock ||
                    s.instr == cpu::SyncInstr::TryLock ||
                    s.instr == cpu::SyncInstr::RdLock ||
                    s.instr == cpu::SyncInstr::WrLock)
                    blocked.push_back({c, s.addr});
            }
        }
        os << "\n";
    }

    // Per-slice entry state.
    static const char *type_names[] = {"Lock", "Barrier", "Cond",
                                       "RwLock"};
    for (CoreId t = 0; t < cfg.numCores && t < slices.size(); ++t) {
        slices[t]->forEachEntry([&](const msa::MsaEntry &e) {
            os << "  slice " << static_cast<unsigned>(t) << ": "
               << type_names[static_cast<unsigned>(e.type)]
               << " @ 0x" << std::hex << e.addr << std::dec
               << " owner=";
            if (e.owner == invalidCore)
                os << "-";
            else
                os << static_cast<unsigned>(e.owner);
            os << " waiters=" << e.hwQueue.count();
            if (e.busy)
                os << " busy";
            if (e.pinCount)
                os << " pins=" << e.pinCount;
            if (slices[t]->isOffline())
                os << " (offline)";
            os << "\n";
        });
    }

    // Waits-for edges: blocked acquirer -> recorded lock owner.
    // A cycle among them is a hard deadlock.
    std::vector<std::pair<CoreId, CoreId>> edges;
    for (const auto &b : blocked) {
        CoreId home = mem::homeTile(blockAlign(b.addr), cfg.numCores);
        if (home >= slices.size())
            continue;
        const msa::MsaEntry *e = slices[home]->findEntry(b.addr);
        if (e && e->owner != invalidCore && e->owner != b.core) {
            edges.emplace_back(b.core, e->owner);
            os << "  waits-for: thread "
               << static_cast<unsigned>(b.core) << " -> thread "
               << static_cast<unsigned>(e->owner) << " (lock 0x"
               << std::hex << b.addr << std::dec << ")\n";
        }
    }
    // Simple cycle walk over the (at most one outgoing edge per
    // thread) waits-for graph.
    for (const auto &[from, to] : edges) {
        CoreId cur = to;
        std::set<CoreId> seen{from};
        while (true) {
            if (seen.count(cur)) {
                if (cur == from)
                    os << "  CYCLE: waits-for cycle through thread "
                       << static_cast<unsigned>(from) << "\n";
                break;
            }
            seen.insert(cur);
            auto it = std::find_if(edges.begin(), edges.end(),
                                   [cur](const auto &e) {
                                       return e.first == cur;
                                   });
            if (it == edges.end())
                break;
            cur = it->second;
        }
    }

    // Core-fault attribution: stalls caused by a dead participant
    // are transient (until leases and the declaration reconfigure
    // around the corpse) or — for a corpse that died holding a
    // *software* lock — unrecoverable; either way the report should
    // say "fault consequence", not "protocol deadlock".
    if (cfg.resil.coreFaultsEnabled()) {
        os << "  dead:";
        bool any_dead = false;
        for (CoreId c = 0; c < cfg.numThreads(); ++c) {
            if (c < cores.size() && cores[c]->killed()) {
                os << " thread " << static_cast<unsigned>(c)
                   << (isDeclaredDead(c) ? " (declared)"
                                         : " (undetected)");
                any_dead = true;
            }
        }
        os << (any_dead ? "\n" : " none\n");
        for (const auto &b : blocked) {
            CoreId home = mem::homeTile(blockAlign(b.addr),
                                        cfg.numCores);
            if (home >= slices.size())
                continue;
            const msa::MsaEntry *e = slices[home]->findEntry(b.addr);
            if (e && e->owner != invalidCore &&
                e->owner < cores.size() && cores[e->owner]->killed())
                os << "  DEAD_HOLDER: thread "
                   << static_cast<unsigned>(b.core)
                   << " waits on lock 0x" << std::hex << b.addr
                   << std::dec << " held by dead thread "
                   << static_cast<unsigned>(e->owner) << "\n";
        }
        for (CoreId t = 0; t < slices.size(); ++t) {
            slices[t]->forEachEntry([&](const msa::MsaEntry &e) {
                if (e.type != msa::SyncType::Barrier ||
                    !e.hwQueue.any())
                    return;
                unsigned dead_missing = 0;
                for (CoreId c = 0; c < cfg.numThreads(); ++c)
                    if (!e.hwQueue.test(c) && c < cores.size() &&
                        cores[c]->killed())
                        ++dead_missing;
                if (dead_missing &&
                    e.hwQueue.count() + dead_missing >= e.goal)
                    os << "  DEAD_PARTICIPANT: barrier 0x" << std::hex
                       << e.addr << std::dec << " on slice "
                       << static_cast<unsigned>(t) << " short only of "
                       << dead_missing << " dead arrival(s)\n";
            });
        }
    }

    // NoC in-flight census + partition attribution: a wedged mesh is
    // debuggable (what is stuck where), and stalls on tiles cut off
    // by dead links/routers are labelled as partition, not deadlock.
    if (cfg.resil.nocFaultsEnabled()) {
        ms->mesh().buildReport(os);
        const noc::Topology topo = ms->mesh().liveTopology();
        const std::vector<int> comp = noc::components(topo);
        bool split = false;
        for (unsigned t = 1; t < comp.size() && !split; ++t)
            split = comp[t] != comp[0];
        if (split) {
            os << "  PARTITION: mesh is split; stalls on tiles";
            for (unsigned t = 0; t < comp.size(); ++t)
                if (comp[t] != comp[0])
                    os << " " << t;
            os << " are attributed to unreachability, not deadlock\n";
        }
    }
    return os.str();
}

double
System::hwCoverage() const
{
    double hw = static_cast<double>(liveCounterSum("sync.hwOps"));
    double sw = static_cast<double>(liveCounterSum("sync.swOps"));
    return (hw + sw) > 0 ? hw / (hw + sw) : 0.0;
}

} // namespace sys
} // namespace misar
